#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "baselines/adapters.h"
#include "engine/hierarchy_cache.h"
#include "graph/flow.h"
#include "util/rng.h"

namespace dmf {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Content hashing for per-terminal-set RNG streams (FNV-1a over 64-bit
// words).
struct ContentHash {
  std::uint64_t state = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t word) {
    state ^= word;
    state *= 0x100000001b3ULL;
  }
};

}  // namespace

// --- Core --------------------------------------------------------------------

struct FlowEngine::Core {
  std::shared_ptr<const Graph> graph;
  EngineOptions options;
  // stats precedes hierarchy: the hierarchy initializer times the build
  // and records it in stats, which therefore must be constructed first.
  EngineStats stats;
  mutable std::mutex stats_mutex;
  // Whether the engine derived route_residual_tolerance itself (the
  // caller left it at the library default with tuning enabled); only
  // then may per-query option derivation re-derive it.
  bool routing_tuned = false;
  std::shared_ptr<const ShermanHierarchy> hierarchy;
  ShermanSolver solver;  // default-accuracy solver on the shared hierarchy
  SolverRegistry registry;
  HierarchyCache cache;

  Core(Graph g, EngineOptions opts)
      : graph(std::make_shared<const Graph>(std::move(g))),
        options(std::move(opts)),
        hierarchy([&] {
          // Derive the AlmostRoute accuracy from the engine accuracy when
          // the caller left it at the library default, mirroring
          // approx_max_flow / approx_max_flow_multi.
          if (options.sherman.almost_route.epsilon ==
              AlmostRouteOptions{}.epsilon) {
            options.sherman.almost_route.epsilon =
                std::min(0.5, options.sherman.epsilon);
          }
          if (options.tune_routing_for_throughput &&
              options.sherman.route_residual_tolerance ==
                  ShermanOptions{}.route_residual_tolerance) {
            options.sherman.route_residual_tolerance =
                options.sherman.epsilon / 4.0;
            routing_tuned = true;
          }
          ShermanOptions sherman = options.sherman;
          if (sherman.hierarchy.threads == 1) {
            // The engine parallelizes the build on its own worker budget;
            // sample_threads is the engine-level pin (sample_threads = 1
            // keeps the build sequential).
            sherman.hierarchy.threads =
                options.sample_threads > 0
                    ? options.sample_threads
                    : resolve_worker_threads(options.threads);
          }
          const auto start = std::chrono::steady_clock::now();
          Rng rng(options.seed);
          auto built =
              std::make_shared<const ShermanHierarchy>(graph, sherman, rng);
          stats.build_seconds = seconds_since(start);
          return built;
        }()),
        solver(hierarchy, options.sherman),
        registry(SolverRegistry::standard(options.exact_cutoff_nodes,
                                          options.exact_epsilon)),
        cache(options.hierarchy_cache_capacity) {
    stats.build_rounds = hierarchy->build_rounds();
    stats.num_trees = hierarchy->approximator().num_trees();
    stats.alpha = hierarchy->alpha();
  }

  // Per-query ShermanOptions for a non-default accuracy, mirroring the
  // engine-level derivation.
  [[nodiscard]] ShermanOptions options_for_epsilon(double epsilon) const {
    ShermanOptions per_query = options.sherman;
    if (epsilon > 0.0 && epsilon != options.sherman.epsilon) {
      per_query.epsilon = epsilon;
      per_query.almost_route.epsilon = std::min(0.5, epsilon);
      if (routing_tuned) {
        per_query.route_residual_tolerance = epsilon / 4.0;
      }
    }
    return per_query;
  }

  // Multi-terminal variant: on the super-terminal instance the virtual
  // edges carry the whole flow, so leftover residual shaves value
  // directly — the epsilon/4 tolerance that costs s-t queries well under
  // 1% costs multi-terminal queries ~2%. Tune gentler (epsilon/16, one
  // extra AlmostRoute call) to stay within ~0.1% of the conservative
  // routing while remaining several times faster than untuned.
  [[nodiscard]] ShermanOptions multi_terminal_options_for_epsilon(
      double epsilon) const {
    ShermanOptions per_query = options_for_epsilon(epsilon);
    if (routing_tuned) {
      per_query.route_residual_tolerance = epsilon / 16.0;
    }
    return per_query;
  }

  // Seed for a terminal set's hierarchy build: a content hash of the
  // canonical sets mixed with the engine seed. Independent of epsilon,
  // submission order, and everything else in flight — the cornerstone of
  // the cache's determinism contract.
  [[nodiscard]] std::uint64_t terminal_seed(
      const std::vector<NodeId>& sources,
      const std::vector<NodeId>& sinks) const {
    ContentHash h;
    h.mix(options.seed);
    h.mix(0x4d54ULL);  // tag: multi-terminal
    for (const NodeId s : sources) h.mix(static_cast<std::uint64_t>(s));
    h.mix(0xffffffffffffffffULL);
    for (const NodeId t : sinks) h.mix(static_cast<std::uint64_t>(t));
    return h.state;
  }

  [[nodiscard]] SuperTerminalHierarchy build_entry(
      const std::vector<NodeId>& sources,
      const std::vector<NodeId>& sinks) const {
    ShermanOptions sherman = options.sherman;
    // Cache builds run on pool workers, possibly several keys at once;
    // keep each build's tree sampling sequential instead of
    // oversubscribing the machine.
    sherman.hierarchy.threads = 1;
    Rng rng(terminal_seed(sources, sinks));
    return build_super_terminal_hierarchy(*graph, sources, sinks, sherman,
                                          rng);
  }

  // --- typed execution (validation, dispatch, classification) ---

  Result<MaxFlowApproxResult> exec(const MaxFlowQuery& q) {
    using R = Result<MaxFlowApproxResult>;
    const Graph& g = *graph;
    if (!g.is_valid_node(q.s) || !g.is_valid_node(q.t)) {
      return R::failure(ErrorCode::kInvalidQuery,
                        "max-flow query: invalid terminal id");
    }
    if (q.s == q.t) {
      return R::failure(ErrorCode::kInvalidQuery,
                        "max-flow query: source equals sink");
    }
    R out;
    try {
      const double epsilon =
          q.epsilon > 0.0 ? q.epsilon : options.sherman.epsilon;
      const QueryProfile profile{g.num_nodes(), g.num_edges(), epsilon,
                                 q.exact};
      const SolverEntry& entry = registry.select(profile);
      out.solver = entry.name;
      if (entry.kind == SolverKind::kSherman) {
        if (q.epsilon > 0.0 && q.epsilon != options.sherman.epsilon) {
          const ShermanSolver per_query(hierarchy,
                                        options_for_epsilon(q.epsilon));
          out.payload = per_query.max_flow(q.s, q.t);
        } else {
          out.payload = solver.max_flow(q.s, q.t);
        }
      } else {
        out.payload = exact_max_flow_adapter(entry.kind, g, q.s, q.t);
      }
    } catch (const std::exception& e) {
      out.code = classify_error(e);
      out.message = e.what();
      out.payload.reset();
    }
    return out;
  }

  Result<RouteResult> exec(const RouteQuery& q) {
    using R = Result<RouteResult>;
    const Graph& g = *graph;
    if (q.demand.size() != static_cast<std::size_t>(g.num_nodes())) {
      return R::failure(ErrorCode::kInvalidQuery,
                        "route query: demand size does not match node count");
    }
    double total = 0.0;
    double scale_hint = 0.0;
    for (const double d : q.demand) {
      total += d;
      scale_hint = std::max(scale_hint, std::abs(d));
    }
    if (std::abs(total) > 1e-6 * (1.0 + scale_hint)) {
      return R::failure(ErrorCode::kInvalidQuery,
                        "route query: demand must sum to zero");
    }
    R out;
    out.solver = "sherman-route";
    try {
      out.payload = solver.route(q.demand);
    } catch (const std::exception& e) {
      out.code = classify_error(e);
      out.message = e.what();
      out.payload.reset();
    }
    return out;
  }

  Result<MultiTerminalMaxFlowResult> exec(const MultiTerminalQuery& q) {
    using R = Result<MultiTerminalMaxFlowResult>;
    const Graph& g = *graph;
    if (q.sources.empty() || q.sinks.empty()) {
      return R::failure(ErrorCode::kInvalidQuery,
                        "multi-terminal query: empty terminal set");
    }
    // canonical_terminals is the single canonical form everywhere on
    // this path: the cache key, terminal_seed, and the build all derive
    // from it (downstream calls re-canonicalize, which is idempotent),
    // so the cache key can never desynchronize from the build seed.
    const std::vector<NodeId> sources = canonical_terminals(q.sources);
    const std::vector<NodeId> sinks = canonical_terminals(q.sinks);
    for (const NodeId v : sources) {
      if (!g.is_valid_node(v)) {
        return R::failure(ErrorCode::kInvalidQuery,
                          "multi-terminal query: invalid source id");
      }
    }
    for (const NodeId v : sinks) {
      if (!g.is_valid_node(v)) {
        return R::failure(ErrorCode::kInvalidQuery,
                          "multi-terminal query: invalid sink id");
      }
    }
    for (const NodeId v : sinks) {
      if (std::binary_search(sources.begin(), sources.end(), v)) {
        return R::failure(
            ErrorCode::kInvalidQuery,
            "multi-terminal query: terminal sets must be disjoint");
      }
    }
    for (const std::vector<NodeId>* set : {&sources, &sinks}) {
      for (const NodeId v : *set) {
        if (g.weighted_degree(v) <= 0.0) {
          return R::failure(ErrorCode::kIsolatedTerminal,
                            "multi-terminal query: terminal " +
                                std::to_string(v) +
                                " has no incident capacity");
        }
      }
    }
    R out;
    try {
      const double epsilon =
          q.epsilon > 0.0 ? q.epsilon : options.sherman.epsilon;
      // The super-terminal reduction solves on an augmented instance two
      // nodes and |S|+|T| edges larger; profile that instance.
      const auto extra =
          static_cast<EdgeId>(sources.size() + sinks.size());
      const QueryProfile profile{g.num_nodes() + 2, g.num_edges() + extra,
                                 epsilon, q.exact};
      const SolverEntry& entry = registry.select(profile);
      out.solver = entry.name;
      if (entry.kind == SolverKind::kSherman) {
        const ShermanOptions per_query =
            multi_terminal_options_for_epsilon(epsilon);
        if (options.share_multi_terminal_hierarchies) {
          const std::shared_ptr<const SuperTerminalHierarchy> st =
              cache.get_or_build(sources, sinks,
                                 [this](const std::vector<NodeId>& srcs,
                                        const std::vector<NodeId>& snks) {
                                   return build_entry(srcs, snks);
                                 });
          out.payload = solve_on_super_terminal_hierarchy(*st, per_query);
        } else {
          const SuperTerminalHierarchy st = build_entry(sources, sinks);
          out.payload = solve_on_super_terminal_hierarchy(st, per_query);
        }
      } else {
        // Exact super-terminal reduction, then project the virtual edges
        // away.
        const SuperTerminalGraph st =
            build_super_terminal_graph(g, sources, sinks);
        const MaxFlowApproxResult raw = exact_max_flow_adapter(
            entry.kind, st.graph, st.super_source, st.super_sink);
        out.payload = project_super_terminal_flow(raw, g.num_edges());
      }
    } catch (const std::exception& e) {
      out.code = classify_error(e);
      out.message = e.what();
      out.payload.reset();
    }
    return out;
  }

  // --- stats ---

  template <typename T>
  void absorb_common(const Result<T>& r) {
    if (!r.ok()) {
      ++stats.queries_failed;
      return;
    }
    ++stats.queries_served;
    stats.query_seconds_total += r.seconds;
    ++stats.queries_by_solver[r.solver];
  }

  void absorb(const Result<MaxFlowApproxResult>& r) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    absorb_common(r);
    if (r.ok()) stats.query_rounds_total += r.payload->rounds;
  }

  void absorb(const Result<RouteResult>& r) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    absorb_common(r);
    if (r.ok()) {
      stats.query_rounds_total += r.payload->rounds;
      stats.max_congestion =
          std::max(stats.max_congestion, r.payload->congestion);
    }
  }

  void absorb(const Result<MultiTerminalMaxFlowResult>& r) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    absorb_common(r);
    if (r.ok()) stats.query_rounds_total += r.payload->rounds;
  }

  void absorb_cancelled() {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.queries_cancelled;
  }

  [[nodiscard]] EngineStats snapshot() const {
    EngineStats out;
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      out = stats;
    }
    out.hierarchy_cache_hits = cache.hits();
    out.hierarchy_cache_misses = cache.misses();
    return out;
  }
};

// --- FlowEngine --------------------------------------------------------------

FlowEngine::FlowEngine(Graph graph, EngineOptions options)
    : core_(std::make_shared<Core>(std::move(graph), std::move(options))),
      pool_(std::make_shared<WorkerPool>(core_->options.threads)) {}

FlowEngine::~FlowEngine() {
  if (pool_) pool_->shutdown();
}

FlowEngine::FlowEngine(FlowEngine&&) noexcept = default;

FlowEngine& FlowEngine::operator=(FlowEngine&& other) noexcept {
  if (this != &other) {
    if (pool_) pool_->shutdown();
    core_ = std::move(other.core_);
    pool_ = std::move(other.pool_);
  }
  return *this;
}

template <typename Query, typename Payload>
Ticket<Payload> FlowEngine::submit_impl(
    Query query, std::function<void(const Result<Payload>&)> done,
    SubmitOptions opts) {
  auto promise = std::make_shared<std::promise<Result<Payload>>>();
  std::future<Result<Payload>> future = promise->get_future();
  auto core = core_;
  // The pool requires `run` to never throw: anything escaping it would
  // std::terminate the worker thread. exec() classifies solver
  // exceptions itself; the catch-alls here cover non-std throws and,
  // separately, a throwing user callback (the callback's exception is
  // swallowed — the ticket still resolves with the computed result).
  auto run = [core, promise, done, query = std::move(query)] {
    const auto start = std::chrono::steady_clock::now();
    Result<Payload> result;
    try {
      result = core->exec(query);
    } catch (...) {
      result = Result<Payload>::failure(ErrorCode::kInternalError,
                                        "non-standard exception escaped "
                                        "query execution");
    }
    result.seconds = seconds_since(start);
    core->absorb(result);
    if (done) {
      try {
        done(result);
      } catch (...) {
      }
    }
    promise->set_value(std::move(result));
  };
  auto cancelled = [core, promise, done](ErrorCode code) {
    Result<Payload> result = Result<Payload>::failure(
        code, code == ErrorCode::kCancelled
                  ? "cancelled before execution"
                  : "engine shut down before execution");
    core->absorb_cancelled();
    if (done) {
      try {
        done(result);
      } catch (...) {
      }
    }
    promise->set_value(std::move(result));
  };
  const std::uint64_t id =
      pool_->submit(opts.priority, std::move(run), std::move(cancelled));
  return Ticket<Payload>(id, std::move(future), pool_);
}

MaxFlowTicket FlowEngine::submit(MaxFlowQuery query, SubmitOptions opts) {
  return submit_impl<MaxFlowQuery, MaxFlowApproxResult>(std::move(query),
                                                        nullptr, opts);
}

RouteTicket FlowEngine::submit(RouteQuery query, SubmitOptions opts) {
  return submit_impl<RouteQuery, RouteResult>(std::move(query), nullptr,
                                              opts);
}

MultiTerminalTicket FlowEngine::submit(MultiTerminalQuery query,
                                       SubmitOptions opts) {
  return submit_impl<MultiTerminalQuery, MultiTerminalMaxFlowResult>(
      std::move(query), nullptr, opts);
}

MaxFlowTicket FlowEngine::submit(
    MaxFlowQuery query,
    std::function<void(const Result<MaxFlowApproxResult>&)> done,
    SubmitOptions opts) {
  return submit_impl<MaxFlowQuery, MaxFlowApproxResult>(std::move(query),
                                                        std::move(done),
                                                        opts);
}

RouteTicket FlowEngine::submit(
    RouteQuery query, std::function<void(const Result<RouteResult>&)> done,
    SubmitOptions opts) {
  return submit_impl<RouteQuery, RouteResult>(std::move(query),
                                              std::move(done), opts);
}

MultiTerminalTicket FlowEngine::submit(
    MultiTerminalQuery query,
    std::function<void(const Result<MultiTerminalMaxFlowResult>&)> done,
    SubmitOptions opts) {
  return submit_impl<MultiTerminalQuery, MultiTerminalMaxFlowResult>(
      std::move(query), std::move(done), opts);
}

void FlowEngine::wait_all() { pool_->wait_all(); }

// --- compatibility shims -----------------------------------------------------

namespace {

template <typename T>
void fill_outcome_common(QueryOutcome& outcome, const Result<T>& r) {
  outcome.ok = r.ok();
  outcome.code = r.code;
  outcome.error = r.message;
  outcome.solver = r.solver;
  outcome.seconds = r.seconds;
}

QueryOutcome to_outcome(Result<MaxFlowApproxResult>&& r) {
  QueryOutcome outcome;
  fill_outcome_common(outcome, r);
  outcome.max_flow = std::move(r.payload);
  return outcome;
}

QueryOutcome to_outcome(Result<RouteResult>&& r) {
  QueryOutcome outcome;
  fill_outcome_common(outcome, r);
  outcome.route = std::move(r.payload);
  return outcome;
}

QueryOutcome to_outcome(Result<MultiTerminalMaxFlowResult>&& r) {
  QueryOutcome outcome;
  fill_outcome_common(outcome, r);
  outcome.multi_terminal = std::move(r.payload);
  return outcome;
}

using AnyTicket =
    std::variant<MaxFlowTicket, RouteTicket, MultiTerminalTicket>;

}  // namespace

std::vector<QueryOutcome> FlowEngine::run_batch(
    const std::vector<EngineQuery>& queries) {
  std::vector<AnyTicket> tickets;
  tickets.reserve(queries.size());
  for (const EngineQuery& query : queries) {
    std::visit([&](const auto& q) { tickets.emplace_back(submit(q)); },
               query);
  }
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(tickets.size());
  for (AnyTicket& ticket : tickets) {
    outcomes.push_back(std::visit(
        [](auto& t) { return to_outcome(t.get()); }, ticket));
  }
  return outcomes;
}

QueryOutcome FlowEngine::run(const EngineQuery& query) {
  return std::visit([&](const auto& q) { return to_outcome(submit(q).get()); },
                    query);
}

// --- accessors ---------------------------------------------------------------

const Graph& FlowEngine::graph() const { return *core_->graph; }

const ShermanHierarchy& FlowEngine::hierarchy() const {
  return *core_->hierarchy;
}

const SolverRegistry& FlowEngine::registry() const { return core_->registry; }

const EngineOptions& FlowEngine::options() const { return core_->options; }

EngineStats FlowEngine::stats() const { return core_->snapshot(); }

}  // namespace dmf
