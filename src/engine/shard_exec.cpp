#include "engine/shard_exec.h"

#include <chrono>
#include <iterator>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dmf {

namespace {

// Bounded waits are insurance against a lost wakeup, not the wakeup
// mechanism: the flag-then-recheck protocol (sleeping / producers_waiting
// announced before blocking, re-verified by the peer) makes the common
// case notification-driven.
constexpr auto kConsumerNap = std::chrono::milliseconds(50);
constexpr auto kProducerNap = std::chrono::milliseconds(1);

void pin_to_core(int shard) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(shard) % hw, &set);
  // Best-effort: a failed affinity call (cgroup restriction, exotic
  // topology) degrades to an unpinned worker, never an error.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)shard;
#endif
}

}  // namespace

ShardedDispatcher::ShardedDispatcher(Options options)
    : num_shards_(options.num_shards), pin_threads_(options.pin_threads) {
  DMF_REQUIRE(options.num_shards > 0,
              "ShardedDispatcher: num_shards must be positive");
  DMF_REQUIRE(options.ring_capacity > 0,
              "ShardedDispatcher: ring_capacity must be positive");
  lanes_.reserve(static_cast<std::size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    lanes_.push_back(std::make_unique<Lane>(options.ring_capacity));
  }
  for (int s = 0; s < num_shards_; ++s) {
    lanes_[static_cast<std::size_t>(s)]->worker =
        std::thread([this, s] { shard_loop(s); });
  }
  control_worker_ = std::thread([this] { control_loop(); });
}

ShardedDispatcher::~ShardedDispatcher() { shutdown(); }

std::shared_ptr<ShardedDispatcher::Task> ShardedDispatcher::make_task(
    int lane, std::function<void()> run, CancelFn cancelled, bool parked) {
  auto task = std::make_shared<Task>();
  task->lane = lane;
  task->run = std::move(run);
  task->cancelled = std::move(cancelled);
  if (parked) task->status.store(kParked);
  {
    MutexLock lock(registry_mutex_);
    DMF_REQUIRE(!stopping_.load(std::memory_order_acquire),
                "ShardedDispatcher: dispatch after shutdown");
    task->id = next_id_++;
    by_id_.emplace(task->id, task);
    ++pending_;
  }
  return task;
}

std::uint64_t ShardedDispatcher::dispatch(int priority,
                                          std::function<void()> run,
                                          CancelFn cancelled, int lane) {
  (void)priority;  // rings are FIFO; priority is a single-pool concept
  DMF_REQUIRE(lane == kControlLane || (lane >= 0 && lane < num_shards_),
              "ShardedDispatcher::dispatch: lane out of range");
  auto task =
      make_task(lane, std::move(run), std::move(cancelled), /*parked=*/false);
  const std::uint64_t id = task->id;
  if (!push_to_lane(lane, task)) {
    // The lane closed between registration and push (shutdown racing a
    // submitter): resolve here so the promise is still fulfilled. Not
    // counted as an explicit cancellation — same as WorkerPool's
    // queued-at-shutdown drain.
    resolve_cancelled(task, ErrorCode::kShutdown, /*count_cancelled=*/false);
  }
  return id;
}

std::uint64_t ShardedDispatcher::dispatch_parked(int priority,
                                                 std::function<void()> run,
                                                 CancelFn cancelled,
                                                 int lane) {
  (void)priority;
  DMF_REQUIRE(lane == kControlLane || (lane >= 0 && lane < num_shards_),
              "ShardedDispatcher::dispatch_parked: lane out of range");
  auto task =
      make_task(lane, std::move(run), std::move(cancelled), /*parked=*/true);
  return task->id;
}

bool ShardedDispatcher::push_to_lane(int lane_idx,
                                     std::shared_ptr<Task> task) {
  if (lane_idx == kControlLane) {
    MutexLock lock(control_mutex_);
    if (stopping_.load(std::memory_order_acquire)) return false;
    control_queue_.push_back(std::move(task));
    control_cv_.notify_one();
    return true;
  }
  Lane& lane = *lanes_[static_cast<std::size_t>(lane_idx)];
  // Serialize submitters into the ring's single producer slot. Held
  // across a full-ring wait too: ordering among blocked producers is
  // not a contract, and shutdown's close-under-this-mutex relies on no
  // push straddling the close. Holding it is what confers the ring's
  // producer role.
  MutexLock producer(lane.producer_mutex);
  lane.ring.producer_role().held();
  for (;;) {
    if (lane.ring.closed()) return false;
    std::shared_ptr<Task> slot = task;
    if (lane.ring.try_push(slot)) break;
    // Backpressure: the shard's pipeline is full. Announce, re-check,
    // block briefly; the consumer notifies after every pop while
    // producers_waiting is set.
    lane.ring_full_waits.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock wake(lane.wake_mutex);
      lane.producers_waiting.fetch_add(1, std::memory_order_seq_cst);
      lane.space_cv.wait_for(lane.wake_mutex, kProducerNap, [&lane] {
        return lane.ring.closed() ||
               lane.ring.size_approx() < lane.ring.capacity();
      });
      lane.producers_waiting.fetch_sub(1, std::memory_order_seq_cst);
    }
  }
  // Wake the consumer only if it announced it was sleeping; the
  // seq_cst fence pair with shard_loop's announce-then-recheck makes a
  // missed flag imply the consumer saw our push.
  if (lane.sleeping.load(std::memory_order_seq_cst)) {
    MutexLock wake(lane.wake_mutex);
    lane.wake_cv.notify_one();
  }
  return true;
}

bool ShardedDispatcher::release(std::uint64_t id) {
  std::shared_ptr<Task> task;
  {
    MutexLock lock(registry_mutex_);
    const auto it = by_id_.find(id);
    if (it == by_id_.end() ||
        stopping_.load(std::memory_order_acquire)) {
      return false;
    }
    task = it->second;
  }
  int expected = kParked;
  if (!task->status.compare_exchange_strong(expected, kQueued)) {
    return false;
  }
  // The push happens outside the registry lock (it can block on a full
  // ring). If shutdown closes the lane in between, the kQueued task is
  // ours to resolve — the parked sweep no longer sees it.
  if (!push_to_lane(task->lane, task)) {
    resolve_cancelled(task, ErrorCode::kShutdown, /*count_cancelled=*/false);
  }
  return true;
}

bool ShardedDispatcher::fail_parked(std::uint64_t id, ErrorCode code) {
  std::shared_ptr<Task> task;
  {
    MutexLock lock(registry_mutex_);
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    task = it->second;
  }
  int expected = kParked;
  if (!task->status.compare_exchange_strong(expected, kCancelled)) {
    return false;
  }
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  task->cancelled(code);
  finish_one(id);
  return true;
}

bool ShardedDispatcher::cancel(std::uint64_t id) {
  std::shared_ptr<Task> task;
  {
    MutexLock lock(registry_mutex_);
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    task = it->second;
  }
  int expected = kQueued;
  if (!task->status.compare_exchange_strong(expected, kCancelled)) {
    expected = kParked;
    if (!task->status.compare_exchange_strong(expected, kCancelled)) {
      return false;
    }
  }
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  task->cancelled(ErrorCode::kCancelled);
  finish_one(id);
  return true;
}

void ShardedDispatcher::wait_all() {
  MutexLock lock(registry_mutex_);
  while (pending_ != 0) idle_cv_.wait(registry_mutex_);
}

void ShardedDispatcher::shutdown() {
  {
    MutexLock lock(registry_mutex_);
    if (stopping_.exchange(true)) {
      // Another caller won the race and owns the joins; wait for it to
      // finish instead of returning while workers may still be live
      // (the destructor relies on shutdown() implying quiescence).
      while (!joined_) idle_cv_.wait(registry_mutex_);
      return;
    }
  }
  // Close every ring under its producer mutex: any in-flight submitter
  // either completed its push before the close (the worker's drain
  // below resolves it) or observes the closed ring and resolves its own
  // task with kShutdown. Either way no promise is stranded.
  for (auto& lane : lanes_) {
    {
      MutexLock producer(lane->producer_mutex);
      lane->ring.close();
    }
    MutexLock wake(lane->wake_mutex);
    lane->wake_cv.notify_all();
    lane->space_cv.notify_all();
  }
  {
    MutexLock lock(control_mutex_);
    control_cv_.notify_all();
  }
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
  if (control_worker_.joinable()) control_worker_.join();
  // Parked sweep: the versions these queries wait for will never be
  // served. Races with a concurrent release() are settled by the status
  // CAS — whoever wins resolves the task exactly once.
  std::vector<std::shared_ptr<Task>> parked;
  {
    MutexLock lock(registry_mutex_);
    parked.reserve(by_id_.size());
    for (const auto& [id, task] : by_id_) {
      if (task->status.load() == kParked) parked.push_back(task);
    }
  }
  for (const auto& task : parked) {
    int expected = kParked;
    if (task->status.compare_exchange_strong(expected, kCancelled)) {
      task->cancelled(ErrorCode::kVersionUnavailable);
      finish_one(task->id);
    }
  }
  {
    MutexLock lock(registry_mutex_);
    joined_ = true;
  }
  idle_cv_.notify_all();
}

ShardedDispatcher::LaneStats ShardedDispatcher::lane_stats(int lane) const {
  DMF_REQUIRE(lane >= 0 && lane < num_shards_,
              "ShardedDispatcher::lane_stats: lane out of range");
  const Lane& l = *lanes_[static_cast<std::size_t>(lane)];
  LaneStats stats;
  stats.executed = l.executed.load(std::memory_order_relaxed);
  stats.ring_full_waits = l.ring_full_waits.load(std::memory_order_relaxed);
  stats.queue_depth = l.ring.size_approx();
  return stats;
}

void ShardedDispatcher::resolve_cancelled(const std::shared_ptr<Task>& task,
                                          ErrorCode code,
                                          bool count_cancelled) {
  int expected = kQueued;
  if (!task->status.compare_exchange_strong(expected, kCancelled)) return;
  if (count_cancelled) cancelled_.fetch_add(1, std::memory_order_relaxed);
  task->cancelled(code);
  finish_one(task->id);
}

void ShardedDispatcher::run_task(Lane* lane,
                                 const std::shared_ptr<Task>& task) {
  int expected = kQueued;
  if (!task->status.compare_exchange_strong(expected, kRunning)) {
    return;  // cancelled while in the ring; its CancelFn already ran
  }
  task->run();
  task->status.store(kDone);
  if (lane != nullptr) lane->executed.fetch_add(1, std::memory_order_relaxed);
  finish_one(task->id);
}

void ShardedDispatcher::shard_loop(int shard) {
  if (pin_threads_) pin_to_core(shard);
  Lane& lane = *lanes_[static_cast<std::size_t>(shard)];
  // This thread is the lane's only consumer for its whole lifetime.
  lane.ring.consumer_role().held();
  for (;;) {
    // Exit condition is the *closed ring*, not the stopping flag:
    // close() runs under the producer mutex, so once observed no
    // further push can succeed and the drain below is complete.
    if (lane.ring.closed()) {
      std::shared_ptr<Task> task;
      while (lane.ring.try_pop(task)) {
        resolve_cancelled(task, ErrorCode::kShutdown,
                          /*count_cancelled=*/false);
        task.reset();
      }
      return;
    }
    std::shared_ptr<Task> task;
    if (lane.ring.try_pop(task)) {
      if (lane.producers_waiting.load(std::memory_order_seq_cst) > 0) {
        MutexLock wake(lane.wake_mutex);
        lane.space_cv.notify_all();
      }
      run_task(&lane, task);
      continue;
    }
    // Ring drained: announce the nap, re-check for a push that raced
    // the announcement, then block (bounded, as lost-wakeup insurance).
    lane.sleeping.store(true, std::memory_order_seq_cst);
    if (!lane.ring.empty_approx() || lane.ring.closed()) {
      lane.sleeping.store(false, std::memory_order_seq_cst);
      continue;
    }
    {
      MutexLock wake(lane.wake_mutex);
      lane.wake_cv.wait_for(lane.wake_mutex, kConsumerNap, [&lane] {
        return !lane.ring.empty_approx() || lane.ring.closed();
      });
    }
    lane.sleeping.store(false, std::memory_order_seq_cst);
  }
}

void ShardedDispatcher::control_loop() {
  for (;;) {
    std::shared_ptr<Task> task;
    std::vector<std::shared_ptr<Task>> drained;
    bool stop = false;
    {
      MutexLock lock(control_mutex_);
      while (control_queue_.empty() &&
             !stopping_.load(std::memory_order_acquire)) {
        control_cv_.wait(control_mutex_);
      }
      if (stopping_.load(std::memory_order_acquire)) {
        // Drain: control tasks not yet claimed resolve with kShutdown,
        // mirroring the shard lanes (and WorkerPool's queue drain). The
        // resolutions run after the lock is dropped — CancelFns fulfill
        // promises and must not run under the control lock.
        drained.assign(std::make_move_iterator(control_queue_.begin()),
                       std::make_move_iterator(control_queue_.end()));
        control_queue_.clear();
        stop = true;
      } else {
        task = std::move(control_queue_.front());
        control_queue_.pop_front();
      }
    }
    if (stop) {
      for (const auto& t : drained) {
        resolve_cancelled(t, ErrorCode::kShutdown,
                          /*count_cancelled=*/false);
      }
      return;
    }
    run_task(nullptr, task);
  }
}

void ShardedDispatcher::finish_one(std::uint64_t id) {
  bool idle = false;
  {
    MutexLock lock(registry_mutex_);
    by_id_.erase(id);
    DMF_REQUIRE(pending_ > 0, "ShardedDispatcher: pending underflow");
    --pending_;
    idle = pending_ == 0;
  }
  if (idle) idle_cv_.notify_all();
}

}  // namespace dmf
