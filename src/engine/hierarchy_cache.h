// Shared super-terminal hierarchies for multi-terminal queries.
//
// An approximate multi-terminal query solves on the super-terminal
// augmented graph, whose hierarchy cannot be shared with the base
// graph's. Before this cache, every such query paid a full per-query
// hierarchy build — so multi-terminal batches got none of the engine's
// amortization (the ROADMAP open item). The cache keys entries on the
// canonicalized (sorted, deduplicated) source and sink sets: queries
// naming the same sets — in any order, at any epsilon — share one build.
//
// Concurrency: the first thread to request a key inserts a shared_future
// and builds; concurrent requesters of the same key block on that future
// instead of duplicating the build. (That blocking holds their pool
// worker slots: a burst of same-key queries landing on every worker can
// stall unrelated queued work for the duration of one build. It resolves
// itself the moment the build finishes — every blocked query then
// completes against the shared entry — but latency-sensitive mixed
// workloads should be aware of it.) A builder that throws fails every
// in-flight waiter and is then forgotten, so the next request retries
// instead of reliving a transient failure forever.
//
// Determinism: the builder derives its RNG purely from (engine seed,
// canonical terminal sets), so the entry is identical no matter which
// query built it first — cache state (including LRU eviction and
// rebuild-after-eviction) can never change a query's result, only its
// cost.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "maxflow/multi_terminal.h"
#include "util/thread_annotations.h"

namespace dmf {

class HierarchyCache {
 public:
  // capacity bounds the number of retained entries (each owns a full
  // augmented graph + hierarchy); least-recently-used entries are
  // evicted on overflow. 0 = unbounded.
  explicit HierarchyCache(std::size_t capacity = 0) : capacity_(capacity) {}

  // Builds the entry for canonicalized terminal sets. Must be
  // deterministic in (sources, sinks); invoked at most once per live
  // key (an evicted or failed key is rebuilt on next request).
  using Builder = std::function<SuperTerminalHierarchy(
      const std::vector<NodeId>& sources, const std::vector<NodeId>& sinks)>;

  // Canonicalizes the terminal sets, then returns the cached entry,
  // building it (or waiting for the in-flight build) if needed. `hit` is
  // set to false only for the requester that performs the build. A
  // builder exception propagates to this key's current requesters, and
  // the key is dropped so later requests retry the build.
  std::shared_ptr<const SuperTerminalHierarchy> get_or_build(
      std::vector<NodeId> sources, std::vector<NodeId> sinks,
      const Builder& build, bool* hit = nullptr);

  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear();

 private:
  // Key: canonical sources ++ {kInvalidNode} ++ canonical sinks.
  using Key = std::vector<NodeId>;
  using EntryFuture =
      std::shared_future<std::shared_ptr<const SuperTerminalHierarchy>>;
  struct Slot {
    EntryFuture future;
    std::list<Key>::iterator lru_position;
    std::uint64_t generation = 0;
  };

  // Forget a failed build — but only the slot the failure belongs to: an
  // evicted-and-reinserted key may map to a newer, healthy build by now.
  void drop(const Key& key, std::uint64_t generation);

  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::map<Key, Slot> entries_ DMF_GUARDED_BY(mutex_);
  // front = most recently used
  std::list<Key> lru_ DMF_GUARDED_BY(mutex_);
  std::uint64_t next_generation_ DMF_GUARDED_BY(mutex_) = 1;
  std::int64_t hits_ DMF_GUARDED_BY(mutex_) = 0;
  std::int64_t misses_ DMF_GUARDED_BY(mutex_) = 0;
};

}  // namespace dmf
