// FlowEngine: an asynchronous multi-query solver session over one graph.
//
// The paper's headline cost is building the congestion approximator (the
// sampled virtual-tree hierarchy); once built, each AlmostRoute / route()
// call is comparatively cheap. The engine exploits that asymmetry: it
// owns the graph, builds the ShermanHierarchy exactly once (virtual-tree
// sampling parallelized across trees, reproducible at any thread count),
// and then serves arbitrarily many heterogeneous queries against the
// const hierarchy — s-t max flow, arbitrary-demand route() calls, and
// multi-terminal max flow.
//
// v2 API: queries are *submitted*, not batched. submit(query) enqueues
// onto a persistent worker pool (created once with the engine) and
// returns a typed Ticket<T> — a future of Result<T> plus cancellation.
// Completion can also be observed through a per-query callback, and
// wait_all() barriers on everything outstanding. Per-query priorities
// order execution; results never depend on them. run_batch()/run() remain
// as thin synchronous shims over submit for existing callers.
//
// Determinism: a query's result depends only on the engine seed, the
// graph, and the query's content — never on submission order, priority,
// thread count, or what else is in flight. Submitted results are
// therefore bitwise identical to run_batch and to issuing the same
// queries one at a time.
//
// Solver selection goes through a SolverRegistry: tiny instances and
// exactness-demanding queries are dispatched to the exact baselines
// (Dinic / push-relabel) via the adapters in src/baselines/adapters.h;
// everything else rides the shared hierarchy. Approximate multi-terminal
// queries solve on the super-terminal-augmented graph, whose hierarchy
// cannot be shared with the base graph's — those builds go through a
// HierarchyCache keyed by the canonicalized terminal sets, so repeated
// (or reordered) terminal sets share one build (see hierarchy_cache.h).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "engine/registry.h"
#include "engine/result.h"
#include "engine/session.h"
#include "graph/graph.h"
#include "maxflow/multi_terminal.h"
#include "maxflow/sherman.h"

namespace dmf {

// --- queries -----------------------------------------------------------------

struct MaxFlowQuery {
  NodeId s = kInvalidNode;
  NodeId t = kInvalidNode;
  double epsilon = 0.0;  // <= 0: use the engine's default accuracy
  bool exact = false;    // demand an exact baseline regardless of size
};

struct RouteQuery {
  std::vector<double> demand;  // one entry per node, summing to ~0
};

struct MultiTerminalQuery {
  std::vector<NodeId> sources;
  std::vector<NodeId> sinks;
  double epsilon = 0.0;
  bool exact = false;
};

using EngineQuery = std::variant<MaxFlowQuery, RouteQuery, MultiTerminalQuery>;

// --- typed results -----------------------------------------------------------

// Each query kind resolves to Result<payload> (engine/result.h):
//   MaxFlowQuery       -> Result<MaxFlowApproxResult>
//   RouteQuery         -> Result<RouteResult>
//   MultiTerminalQuery -> Result<MultiTerminalMaxFlowResult>
using MaxFlowTicket = Ticket<MaxFlowApproxResult>;
using RouteTicket = Ticket<RouteResult>;
using MultiTerminalTicket = Ticket<MultiTerminalMaxFlowResult>;

// Compatibility result for the run()/run_batch() shims: the pre-v2
// untyped bag of optionals, now also carrying the ErrorCode.
struct QueryOutcome {
  bool ok = false;
  ErrorCode code = ErrorCode::kInternalError;
  std::string error;   // set when !ok
  std::string solver;  // registry entry (or "sherman-route") that served it
  double seconds = 0.0;
  // Exactly one of these is populated, matching the query alternative.
  std::optional<MaxFlowApproxResult> max_flow;
  std::optional<RouteResult> route;
  std::optional<MultiTerminalMaxFlowResult> multi_terminal;
};

struct EngineStats {
  double build_seconds = 0.0;  // hierarchy construction wall time
  double build_rounds = 0.0;   // accounted CONGEST rounds of the build
  int num_trees = 0;
  double alpha = 0.0;
  std::int64_t queries_served = 0;
  std::int64_t queries_failed = 0;
  std::int64_t queries_cancelled = 0;  // cancelled or dropped at shutdown
  // Super-terminal hierarchy sharing across multi-terminal queries: a
  // miss pays a full hierarchy build on the augmented graph, a hit reuses
  // (or waits on) a previous build of the same canonical terminal sets.
  std::int64_t hierarchy_cache_hits = 0;
  std::int64_t hierarchy_cache_misses = 0;
  double query_seconds_total = 0.0;
  // Sum of the per-reply round accounting (Sherman max-flow replies fold
  // the one-off build rounds in, matching ShermanSolver::max_flow).
  double query_rounds_total = 0.0;
  double max_congestion = 0.0;      // worst route() congestion observed
  std::map<std::string, std::int64_t> queries_by_solver;

  // The economic argument for batching: the one-off build cost spread
  // over every query served so far.
  [[nodiscard]] double amortized_build_seconds_per_query() const {
    return queries_served > 0
               ? build_seconds / static_cast<double>(queries_served)
               : build_seconds;
  }
};

// --- engine ------------------------------------------------------------------

struct EngineOptions {
  ShermanOptions sherman;  // default accuracy + hierarchy parameters
  // When the caller leaves sherman.route_residual_tolerance at the
  // library default, the engine raises it to epsilon/4: the exact tree
  // rerouting absorbs the leftover either way, the congestion bound
  // degrades by far less than the (1+eps) budget, and queries shed most
  // of their AlmostRoute calls — the second half (besides hierarchy
  // amortization) of the engine's throughput story. Set to false to keep
  // the library's conservative routing untouched.
  bool tune_routing_for_throughput = true;
  // Share super-terminal hierarchies across approximate multi-terminal
  // queries with the same canonical terminal sets (see hierarchy_cache.h).
  // Disabling rebuilds per query; results are identical either way.
  bool share_multi_terminal_hierarchies = true;
  // Retained cache entries (each owns an augmented graph + hierarchy);
  // least-recently-used eviction beyond this. 0 = unbounded. Eviction
  // never changes results — a re-requested evicted set rebuilds the
  // identical hierarchy, it just pays the build again.
  std::size_t hierarchy_cache_capacity = 64;
  // Worker threads of the persistent pool; 0 = all hardware threads.
  int threads = 0;
  // Threads for the one-off virtual-tree sampling; 0 = same as `threads`,
  // 1 = keep the build sequential.
  int sample_threads = 0;
  // Registry policy knobs (see SolverRegistry::standard).
  NodeId exact_cutoff_nodes = 64;
  double exact_epsilon = 1e-6;
  // Seed for the hierarchy build and for per-terminal-set derivation.
  std::uint64_t seed = 0x5eed0f10eULL;
};

class FlowEngine {
 public:
  // Builds the base hierarchy immediately (the expensive step) and starts
  // the worker pool.
  explicit FlowEngine(Graph graph, EngineOptions options = {});

  // Destruction cancels everything still queued (those tickets resolve
  // with ErrorCode::kShutdown), finishes queries already running, and
  // joins the pool. Outstanding tickets stay safe to use afterwards.
  ~FlowEngine();

  // Movable: the graph lives behind a shared_ptr inside the hierarchy,
  // so relocating the engine dangles nothing.
  FlowEngine(FlowEngine&&) noexcept;
  FlowEngine& operator=(FlowEngine&&) noexcept;
  FlowEngine(const FlowEngine&) = delete;
  FlowEngine& operator=(const FlowEngine&) = delete;

  // --- asynchronous session API ---
  // Enqueue one query; returns immediately. Per-query failures resolve
  // the ticket with an ErrorCode, never throw.
  [[nodiscard]] MaxFlowTicket submit(MaxFlowQuery query,
                                     SubmitOptions opts = {});
  [[nodiscard]] RouteTicket submit(RouteQuery query, SubmitOptions opts = {});
  [[nodiscard]] MultiTerminalTicket submit(MultiTerminalQuery query,
                                           SubmitOptions opts = {});

  // Callback form: `done` runs right before the ticket becomes ready —
  // on the worker thread for executed queries, but synchronously on the
  // *cancelling* thread for cancelled resolutions (inside
  // Ticket::cancel() or the engine destructor's shutdown drain), so it
  // must not assume a thread identity or re-enter locks the canceller
  // holds. An exception thrown by the callback is swallowed — the
  // ticket still resolves with the computed result.
  [[nodiscard]] MaxFlowTicket submit(
      MaxFlowQuery query,
      std::function<void(const Result<MaxFlowApproxResult>&)> done,
      SubmitOptions opts = {});
  [[nodiscard]] RouteTicket submit(
      RouteQuery query, std::function<void(const Result<RouteResult>&)> done,
      SubmitOptions opts = {});
  [[nodiscard]] MultiTerminalTicket submit(
      MultiTerminalQuery query,
      std::function<void(const Result<MultiTerminalMaxFlowResult>&)> done,
      SubmitOptions opts = {});

  // Block until every query submitted so far has resolved.
  void wait_all();

  // --- synchronous compatibility shims over submit ---
  // Execute a batch; outcome[i] corresponds to queries[i].
  std::vector<QueryOutcome> run_batch(const std::vector<EngineQuery>& queries);
  // Single-query convenience; equivalent to a batch of one.
  QueryOutcome run(const EngineQuery& query);

  [[nodiscard]] const Graph& graph() const;
  [[nodiscard]] const ShermanHierarchy& hierarchy() const;
  [[nodiscard]] const SolverRegistry& registry() const;
  [[nodiscard]] const EngineOptions& options() const;
  // Snapshot of the counters (taken under the stats lock; safe to call
  // while queries are in flight).
  [[nodiscard]] EngineStats stats() const;

 private:
  struct Core;

  template <typename Query, typename Payload>
  Ticket<Payload> submit_impl(
      Query query, std::function<void(const Result<Payload>&)> done,
      SubmitOptions opts);

  std::shared_ptr<Core> core_;
  std::shared_ptr<WorkerPool> pool_;
};

}  // namespace dmf
