// FlowEngine: a batched multi-query solver engine over one graph.
//
// The paper's headline cost is building the congestion approximator (the
// sampled virtual-tree hierarchy); once built, each AlmostRoute / route()
// call is comparatively cheap. The engine exploits that asymmetry: it
// owns the graph, builds the ShermanHierarchy exactly once (virtual-tree
// sampling parallelized across trees, reproducible at any thread count),
// and then serves arbitrarily many heterogeneous queries against the
// const hierarchy — s-t max flow, arbitrary-demand route() calls, and
// multi-terminal max flow. Independent queries in a batch execute
// concurrently on a worker pool.
//
// Determinism: a query's result depends only on the engine seed, the
// graph, and the query's content — never on batch position, batch
// composition, or thread count. Batched results are therefore bitwise
// identical to issuing the same queries one at a time.
//
// Solver selection goes through a SolverRegistry: tiny instances and
// exactness-demanding queries are dispatched to the exact baselines
// (Dinic / push-relabel) via the adapters in src/baselines/adapters.h;
// everything else rides the shared hierarchy. One exception: approximate
// multi-terminal queries solve on the super-terminal-augmented graph,
// whose hierarchy cannot be shared with the base graph's, so they build
// a per-query hierarchy (sharing it across a batch's terminal sets is an
// open item in ROADMAP.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "engine/registry.h"
#include "graph/graph.h"
#include "maxflow/multi_terminal.h"
#include "maxflow/sherman.h"

namespace dmf {

// --- queries -----------------------------------------------------------------

struct MaxFlowQuery {
  NodeId s = kInvalidNode;
  NodeId t = kInvalidNode;
  double epsilon = 0.0;  // <= 0: use the engine's default accuracy
  bool exact = false;    // demand an exact baseline regardless of size
};

struct RouteQuery {
  std::vector<double> demand;  // one entry per node, summing to ~0
};

struct MultiTerminalQuery {
  std::vector<NodeId> sources;
  std::vector<NodeId> sinks;
  double epsilon = 0.0;
  bool exact = false;
};

using EngineQuery = std::variant<MaxFlowQuery, RouteQuery, MultiTerminalQuery>;

// --- results -----------------------------------------------------------------

struct QueryOutcome {
  bool ok = false;
  std::string error;   // set when !ok (a DMF_REQUIRE failure, typically)
  std::string solver;  // registry entry (or "sherman-route") that served it
  double seconds = 0.0;
  // Exactly one of these is populated, matching the query alternative.
  std::optional<MaxFlowApproxResult> max_flow;
  std::optional<RouteResult> route;
  std::optional<MultiTerminalMaxFlowResult> multi_terminal;
};

struct EngineStats {
  double build_seconds = 0.0;  // hierarchy construction wall time
  double build_rounds = 0.0;   // accounted CONGEST rounds of the build
  int num_trees = 0;
  double alpha = 0.0;
  std::int64_t queries_served = 0;
  std::int64_t queries_failed = 0;
  double query_seconds_total = 0.0;
  // Sum of the per-reply round accounting (Sherman max-flow replies fold
  // the one-off build rounds in, matching ShermanSolver::max_flow).
  double query_rounds_total = 0.0;
  double max_congestion = 0.0;      // worst route() congestion observed
  std::map<std::string, std::int64_t> queries_by_solver;

  // The economic argument for batching: the one-off build cost spread
  // over every query served so far.
  [[nodiscard]] double amortized_build_seconds_per_query() const {
    return queries_served > 0
               ? build_seconds / static_cast<double>(queries_served)
               : build_seconds;
  }
};

// --- engine ------------------------------------------------------------------

struct EngineOptions {
  ShermanOptions sherman;  // default accuracy + hierarchy parameters
  // When the caller leaves sherman.route_residual_tolerance at the
  // library default, the engine raises it to epsilon/4: the exact tree
  // rerouting absorbs the leftover either way, the congestion bound
  // degrades by far less than the (1+eps) budget, and queries shed most
  // of their AlmostRoute calls — the second half (besides hierarchy
  // amortization) of the engine's throughput story. Set to false to keep
  // the library's conservative routing untouched.
  bool tune_routing_for_throughput = true;
  // Worker threads for batch execution; 0 = all hardware threads.
  int threads = 0;
  // Threads for the one-off virtual-tree sampling; 0 = same as `threads`,
  // 1 = keep the build sequential.
  int sample_threads = 0;
  // Registry policy knobs (see SolverRegistry::standard).
  NodeId exact_cutoff_nodes = 64;
  double exact_epsilon = 1e-6;
  // Seed for the hierarchy build and for per-query RNG derivation.
  std::uint64_t seed = 0x5eed0f10eULL;
};

class FlowEngine {
 public:
  // Builds the hierarchy immediately (the expensive step).
  explicit FlowEngine(Graph graph, EngineOptions options = {});

  // The shared hierarchy holds a pointer into graph_, so relocating the
  // engine would dangle it.
  FlowEngine(const FlowEngine&) = delete;
  FlowEngine& operator=(const FlowEngine&) = delete;
  FlowEngine(FlowEngine&&) = delete;
  FlowEngine& operator=(FlowEngine&&) = delete;

  // Execute a batch; outcome[i] corresponds to queries[i]. Queries run
  // concurrently on the worker pool; per-query failures are reported in
  // the outcome, never thrown.
  std::vector<QueryOutcome> run_batch(const std::vector<EngineQuery>& queries);

  // Single-query convenience; equivalent to a batch of one.
  QueryOutcome run(const EngineQuery& query);

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const ShermanHierarchy& hierarchy() const {
    return *hierarchy_;
  }
  [[nodiscard]] const SolverRegistry& registry() const { return registry_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

 private:
  [[nodiscard]] QueryOutcome execute(const EngineQuery& query) const;
  [[nodiscard]] QueryOutcome execute_max_flow(const MaxFlowQuery& q) const;
  [[nodiscard]] QueryOutcome execute_route(const RouteQuery& q) const;
  [[nodiscard]] QueryOutcome execute_multi_terminal(
      const MultiTerminalQuery& q) const;
  // Seed for a query's private RNG stream: a content hash mixed with the
  // engine seed, so the result is independent of batch position.
  [[nodiscard]] std::uint64_t query_seed(const MultiTerminalQuery& q) const;
  void absorb(const QueryOutcome& outcome);

  Graph graph_;
  EngineOptions options_;
  // stats_ precedes hierarchy_: the hierarchy initializer times the build
  // and records it in stats_, which therefore must be constructed first.
  EngineStats stats_;
  std::shared_ptr<const ShermanHierarchy> hierarchy_;
  ShermanSolver solver_;  // default-accuracy solver on the shared hierarchy
  SolverRegistry registry_;
};

}  // namespace dmf
