// FlowEngine: an asynchronous multi-query solver session over one graph.
//
// The paper's headline cost is building the congestion approximator (the
// sampled virtual-tree hierarchy); once built, each AlmostRoute / route()
// call is comparatively cheap. The engine exploits that asymmetry: it
// owns the graph, builds the ShermanHierarchy exactly once (virtual-tree
// sampling parallelized across trees, reproducible at any thread count),
// and then serves arbitrarily many heterogeneous queries against the
// const hierarchy — s-t max flow, arbitrary-demand route() calls, and
// multi-terminal max flow.
//
// v2 API: queries are *submitted*, not batched. submit(query) enqueues
// onto a persistent worker pool (created once with the engine) and
// returns a typed Ticket<T> — a future of Result<T> plus cancellation.
// Completion can also be observed through a per-query callback, and
// wait_all() barriers on everything outstanding. Per-query priorities
// order execution; results never depend on them. run_batch()/run() remain
// as thin synchronous shims over submit for existing callers.
//
// Determinism: a query's result depends only on the engine seed, the
// graph, and the query's content — never on submission order, priority,
// thread count, or what else is in flight. Submitted results are
// therefore bitwise identical to run_batch and to issuing the same
// queries one at a time.
//
// Solver selection goes through a SolverRegistry: tiny instances and
// exactness-demanding queries are dispatched to the exact baselines
// (Dinic / push-relabel) via the adapters in src/baselines/adapters.h;
// everything else rides the shared hierarchy. Approximate multi-terminal
// queries solve on the super-terminal-augmented graph, whose hierarchy
// cannot be shared with the base graph's — those builds go through a
// HierarchyCache keyed by the canonicalized terminal sets, so repeated
// (or reordered) terminal sets share one build (see hierarchy_cache.h).
//
// v3: the graph is no longer frozen at construction. The engine serves
// from a GraphStore of immutable versioned snapshots; apply(MutationBatch)
// publishes the next snapshot copy-on-write and enqueues a background
// hierarchy rebuild on the same worker pool. Until the rebuilt hierarchy
// is atomically swapped in, in-flight and newly submitted queries keep
// being served from the previous snapshot ("stale serving" — each Result
// reports its served_version, and EngineStats counts rebuilds and stale
// serves). SubmitOptions::min_version parks a query until a fresh-enough
// hierarchy lands. One HierarchyCache lives per snapshot, so
// multi-terminal entries never mix graph generations. Determinism holds
// per version: a query's result depends only on the engine seed, the
// snapshot that served it, and the query content — never on rebuild
// timing, and a post-swap query matches a fresh engine built directly on
// the mutated graph bitwise.
//
// v4: the execution backend is pluggable. EngineOptions::shards > 0
// replaces the single mutexed worker pool with per-shard run-to-
// completion pipelines (engine/shard_exec.h): each snapshot carries a
// locality shard plan (graph/shard_plan.h), submit() routes a query to
// the shard owning its terminals over a bounded SPSC ring, and the
// owning worker — the only thread that ever executes that shard's
// queries — serves it with shard-local state: a per-shard
// HierarchyCache and a per-shard, per-generation result store that
// replays previously computed identical queries. The determinism
// contract is unchanged and shard-count-invariant: results are bitwise
// identical at any shard count (including 0, the classic pool), because
// routing only picks *where* a query runs and the result store only
// replays what the same deterministic exec already produced for the
// same snapshot. Cross-shard queries (terminals on different shards)
// run on the lowest-indexed owning shard against the full hierarchy —
// the hierarchy's top levels are the aggregation path — and are counted
// per shard in EngineStats.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "engine/congest_runner.h"
#include "engine/registry.h"
#include "engine/result.h"
#include "engine/session.h"
#include "graph/graph.h"
#include "graph/graph_store.h"
#include "maxflow/multi_terminal.h"
#include "maxflow/sherman.h"

namespace dmf {

// --- queries -----------------------------------------------------------------

struct MaxFlowQuery {
  NodeId s = kInvalidNode;
  NodeId t = kInvalidNode;
  double epsilon = 0.0;  // <= 0: use the engine's default accuracy
  bool exact = false;    // demand an exact baseline regardless of size
};

struct RouteQuery {
  std::vector<double> demand;  // one entry per node, summing to ~0
};

struct MultiTerminalQuery {
  std::vector<NodeId> sources;
  std::vector<NodeId> sinks;
  double epsilon = 0.0;
  bool exact = false;
};

// CongestQuery (engine/congest_runner.h) is the fourth alternative: a
// round-complexity measurement on the serving snapshot rather than a
// flow computation.
using EngineQuery =
    std::variant<MaxFlowQuery, RouteQuery, MultiTerminalQuery, CongestQuery>;

// --- typed results -----------------------------------------------------------

// Each query kind resolves to Result<payload> (engine/result.h):
//   MaxFlowQuery       -> Result<MaxFlowApproxResult>
//   RouteQuery         -> Result<RouteResult>
//   MultiTerminalQuery -> Result<MultiTerminalMaxFlowResult>
//   CongestQuery       -> Result<CongestRunResult>
using MaxFlowTicket = Ticket<MaxFlowApproxResult>;
using RouteTicket = Ticket<RouteResult>;
using MultiTerminalTicket = Ticket<MultiTerminalMaxFlowResult>;
using CongestTicket = Ticket<CongestRunResult>;

// Compatibility result for the run()/run_batch() shims: the pre-v2
// untyped bag of optionals, now also carrying the ErrorCode.
struct QueryOutcome {
  bool ok = false;
  ErrorCode code = ErrorCode::kInternalError;
  std::string error;   // set when !ok
  std::string solver;  // registry entry (or "sherman-route") that served it
  double seconds = 0.0;
  GraphVersion served_version = 0;  // snapshot the query was served from
  // Exactly one of these is populated, matching the query alternative.
  std::optional<MaxFlowApproxResult> max_flow;
  std::optional<RouteResult> route;
  std::optional<MultiTerminalMaxFlowResult> multi_terminal;
  std::optional<CongestRunResult> congest;
};

// How background hierarchy refreshes behaved, grouped (one refresh =
// one full rebuild OR one incremental repair; see FlowEngine::apply).
struct RebuildStats {
  // A refresh "starts" when a worker begins building toward a newer
  // snapshot and "completes" when its hierarchy is swapped in.
  // Coalescing (several applies, one refresh of the newest snapshot)
  // and lost swap races make started >= completed; failed refreshes
  // (e.g. a batch that disconnected the graph) are counted separately
  // and leave the engine serving the previous snapshot.
  std::int64_t started = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  double seconds_total = 0.0;  // wall time of all refreshes, repairs incl.
  // The incremental-repair subset: capacity-only transitions resample
  // only the trees whose structural capacity view changed and splice
  // the rest in (bitwise identical to a full rebuild). A repair that
  // throws is counted failed and falls back to a full rebuild within
  // the same refresh.
  std::int64_t repairs_started = 0;
  std::int64_t repairs_completed = 0;
  std::int64_t repairs_failed = 0;
  std::int64_t trees_repaired = 0;  // dirty trees resampled from seeds
  std::int64_t trees_reused = 0;    // clean trees spliced in
  double repair_seconds_total = 0.0;
};

// Per-shard serving breakdown (sharded backend only; see
// EngineOptions::shards). Slice fields describe the serving snapshot's
// shard plan; counter fields are cumulative since engine construction.
struct ShardStats {
  int shard = 0;
  NodeId nodes = 0;            // global nodes owned by this shard
  EdgeId internal_edges = 0;   // both endpoints on this shard
  EdgeId boundary_edges = 0;   // edges this shard shares with another
  std::size_t queue_depth = 0; // sampled SPSC ring occupancy
  std::int64_t executed = 0;   // queries run to completion on this lane
  std::int64_t routed_local = 0;  // all terminals on this shard
  std::int64_t routed_cross = 0;  // terminals straddle shards
  std::int64_t ring_full_waits = 0;  // submit-side backpressure events
  std::int64_t result_store_hits = 0;
  std::int64_t result_store_misses = 0;
};

struct EngineStats {
  double build_seconds = 0.0;  // hierarchy construction wall time
  double build_rounds = 0.0;   // accounted CONGEST rounds of the build
  int num_trees = 0;
  double alpha = 0.0;
  std::int64_t queries_served = 0;
  std::int64_t queries_failed = 0;
  std::int64_t queries_cancelled = 0;  // cancelled or dropped at shutdown
  // Super-terminal hierarchy sharing across multi-terminal queries: a
  // miss pays a full hierarchy build on the augmented graph, a hit reuses
  // (or waits on) a previous build of the same canonical terminal sets.
  std::int64_t hierarchy_cache_hits = 0;
  std::int64_t hierarchy_cache_misses = 0;
  // --- versioned mutation path ---
  GraphVersion serving_version = 0;  // snapshot the hierarchy serves
  GraphVersion latest_version = 0;   // newest snapshot in the store
  // Background refresh behavior (full rebuilds + incremental repairs).
  RebuildStats rebuild;
  // --- persistence (GraphStore data_dir configured; zeros otherwise) ---
  // Cold starts served from a persisted hierarchy: construction mapped
  // the saved tree arrays instead of sampling — no rebuild ran.
  std::int64_t hierarchy_cold_loads = 0;
  // A persisted hierarchy existed but failed to load (corrupt file,
  // option mismatch); the engine fell back to a normal build.
  std::int64_t hierarchy_load_failures = 0;
  // Hierarchies written to the data dir (construction + every swap).
  std::int64_t hierarchy_saves = 0;
  // Queries answered from a snapshot older than the store's latest (the
  // price of not stalling during a rebuild).
  std::int64_t queries_served_stale = 0;
  // Queries parked by SubmitOptions::min_version until a fresh-enough
  // hierarchy landed.
  std::int64_t queries_parked = 0;
  double query_seconds_total = 0.0;
  // Sum of the per-reply round accounting (Sherman max-flow replies fold
  // the one-off build rounds in, matching ShermanSolver::max_flow).
  double query_rounds_total = 0.0;
  double max_congestion = 0.0;      // worst route() congestion observed
  std::map<std::string, std::int64_t> queries_by_solver;
  // --- sharded execution (EngineOptions::shards > 0; empty otherwise) ---
  int num_shards = 0;  // 0 = classic single-pool backend
  // Routing split at submit time: local = every terminal of the query
  // fell on one shard, cross = the query aggregates across shards
  // (served on its lowest owning shard against the full hierarchy).
  std::int64_t queries_routed_local = 0;
  std::int64_t queries_routed_cross = 0;
  // Per-shard, per-generation result store: a hit replays an identical
  // earlier query of the same snapshot bitwise instead of recomputing.
  std::int64_t result_store_hits = 0;
  std::int64_t result_store_misses = 0;
  // Fraction of the serving snapshot's edges internal to their shard —
  // the quality of the locality partition (1.0 when K == 1).
  double shard_locality = 0.0;
  std::vector<ShardStats> shards;

  // The economic argument for batching: the one-off build cost spread
  // over every query served so far.
  [[nodiscard]] double amortized_build_seconds_per_query() const {
    return queries_served > 0
               ? build_seconds / static_cast<double>(queries_served)
               : build_seconds;
  }
};

// --- mutation results --------------------------------------------------------

// The refresh strategy the engine projects for a published batch.
enum class RebuildPlan {
  kFullRebuild,  // topology changed (or repair is not applicable)
  kTreeRepair,   // capacity-only: resample dirty trees, splice the rest
  kNoOp,         // no observable change; previous hierarchy is re-tagged
};

// What apply() published and what the background refresh toward it is
// expected to do. The plan is a projection against the serving
// hierarchy at apply time: the refresh re-decides against whatever is
// serving when it runs (coalesced batches, repair fallbacks), so treat
// plan/trees_dirty as advisory and the stats counters as ground truth.
struct ApplyResult {
  GraphVersion version = 0;
  RebuildPlan plan = RebuildPlan::kFullRebuild;
  int trees_dirty = 0;  // trees the projected repair would resample
  int trees_total = 0;
};

// --- engine ------------------------------------------------------------------

struct EngineOptions {
  ShermanOptions sherman;  // default accuracy + hierarchy parameters
  // When the caller leaves sherman.route_residual_tolerance at the
  // library default, the engine raises it to epsilon/4: the exact tree
  // rerouting absorbs the leftover either way, the congestion bound
  // degrades by far less than the (1+eps) budget, and queries shed most
  // of their AlmostRoute calls — the second half (besides hierarchy
  // amortization) of the engine's throughput story. Set to false to keep
  // the library's conservative routing untouched.
  bool tune_routing_for_throughput = true;
  // Share super-terminal hierarchies across approximate multi-terminal
  // queries with the same canonical terminal sets (see hierarchy_cache.h).
  // Disabling rebuilds per query; results are identical either way.
  bool share_multi_terminal_hierarchies = true;
  // Structural capacity quantization width (octaves) applied to the
  // hierarchy build when the caller left
  // sherman.hierarchy.capacity_bucket_octaves at the library default
  // (off). Quantization makes tree structure insensitive to small
  // capacity changes, which is what lets a capacity-only apply() repair
  // the hierarchy incrementally instead of rebuilding it (a changed
  // edge dirties a tree only with probability ~|log2(new/old)|/width).
  // The structural phase sees capacities coarsened by at most this
  // factor of 2^width; exact capacities always return in the final
  // per-tree recapacitation, so feasibility/cut guarantees are
  // unaffected. 0 disables (every capacity change rebuilds every tree).
  double capacity_quantization_octaves = 1.0;
  // Retained cache entries (each owns an augmented graph + hierarchy);
  // least-recently-used eviction beyond this. 0 = unbounded. Eviction
  // never changes results — a re-requested evicted set rebuilds the
  // identical hierarchy, it just pays the build again.
  std::size_t hierarchy_cache_capacity = 64;
  // Worker threads of the persistent pool; 0 = all hardware threads.
  // Ignored when `shards` > 0 for query execution (one worker per
  // shard), but still sizes the hierarchy-build parallelism.
  int threads = 0;
  // --- sharded execution backend ---
  // 0 (default) keeps the classic single worker pool. K > 0 partitions
  // the serving snapshot into K shards via its locality plan and pins
  // one run-to-completion worker per shard behind a bounded SPSC ring;
  // submit() routes each query to the shard owning its terminals.
  // Results are bitwise identical at every value of K — sharding moves
  // work, never changes it. With sharding, SubmitOptions::priority
  // becomes a no-op (each ring is FIFO); it was always only a
  // scheduling hint.
  int shards = 0;
  // Capacity of each shard's submission ring; a full ring blocks the
  // submitter briefly (counted in ShardStats::ring_full_waits).
  std::size_t shard_ring_capacity = 1024;
  // Pin shard workers to cores (Linux, best-effort).
  bool pin_shard_threads = true;
  // Entries retained per shard per generation in the result store
  // (FIFO eviction; 0 disables replay). Stores are dropped whole with
  // their snapshot generation, so replayed results never mix versions.
  std::size_t shard_result_store_capacity = 4096;
  // Threads for the one-off virtual-tree sampling; 0 = same as `threads`,
  // 1 = keep the build sequential.
  int sample_threads = 0;
  // Registry policy knobs (see SolverRegistry::standard).
  NodeId exact_cutoff_nodes = 64;
  double exact_epsilon = 1e-6;
  // Seed for the hierarchy build and for per-terminal-set derivation.
  std::uint64_t seed = 0x5eed0f10eULL;
};

class FlowEngine {
 public:
  // Builds the hierarchy for the store's latest snapshot immediately
  // (the expensive step) and starts the worker pool. The engine shares
  // the store: apply() publishes new snapshots through it, and several
  // engines may serve one store (each refreshes independently).
  explicit FlowEngine(std::shared_ptr<GraphStore> store,
                      EngineOptions options = {});

  // Compatibility shim over a fresh single-snapshot store holding
  // `graph` as version 0. Mutation works on this form too — the store
  // is simply engine-private.
  explicit FlowEngine(Graph graph, EngineOptions options = {});

  // Destruction cancels everything still queued (those tickets resolve
  // with ErrorCode::kShutdown), finishes queries already running, and
  // joins the pool. Outstanding tickets stay safe to use afterwards.
  ~FlowEngine();

  // Movable: the graph lives behind a shared_ptr inside the hierarchy,
  // so relocating the engine dangles nothing.
  FlowEngine(FlowEngine&&) noexcept;
  FlowEngine& operator=(FlowEngine&&) noexcept;
  FlowEngine(const FlowEngine&) = delete;
  FlowEngine& operator=(const FlowEngine&) = delete;

  // --- asynchronous session API ---
  // Enqueue one query; returns immediately. Per-query failures resolve
  // the ticket with an ErrorCode, never throw.
  [[nodiscard]] MaxFlowTicket submit(MaxFlowQuery query,
                                     SubmitOptions opts = {});
  [[nodiscard]] RouteTicket submit(RouteQuery query, SubmitOptions opts = {});
  [[nodiscard]] MultiTerminalTicket submit(MultiTerminalQuery query,
                                           SubmitOptions opts = {});
  [[nodiscard]] CongestTicket submit(CongestQuery query,
                                     SubmitOptions opts = {});

  // Callback form: `done` runs right before the ticket becomes ready —
  // on the worker thread for executed queries, but synchronously on the
  // *cancelling* thread for cancelled resolutions (inside
  // Ticket::cancel() or the engine destructor's shutdown drain), so it
  // must not assume a thread identity or re-enter locks the canceller
  // holds. An exception thrown by the callback is swallowed — the
  // ticket still resolves with the computed result.
  [[nodiscard]] MaxFlowTicket submit(
      MaxFlowQuery query,
      std::function<void(const Result<MaxFlowApproxResult>&)> done,
      SubmitOptions opts = {});
  [[nodiscard]] RouteTicket submit(
      RouteQuery query, std::function<void(const Result<RouteResult>&)> done,
      SubmitOptions opts = {});
  [[nodiscard]] MultiTerminalTicket submit(
      MultiTerminalQuery query,
      std::function<void(const Result<MultiTerminalMaxFlowResult>&)> done,
      SubmitOptions opts = {});
  [[nodiscard]] CongestTicket submit(
      CongestQuery query,
      std::function<void(const Result<CongestRunResult>&)> done,
      SubmitOptions opts = {});

  // Block until every query submitted so far has resolved. Queries
  // parked by min_version count: if the version they wait for is never
  // published (and the engine is not destroyed), this blocks.
  void wait_all();

  // --- versioned mutation path ---
  // Publish the batch as the next snapshot (copy-on-write; throws on an
  // invalid op, publishing nothing) and enqueue a background hierarchy
  // refresh on the worker pool. Returns immediately with the new
  // snapshot's version plus the projected refresh plan (see
  // ApplyResult) — queries keep being served from the previous
  // snapshot until the refreshed hierarchy is swapped in atomically.
  // Capacity-only batches take the incremental repair path: only trees
  // whose structural capacity view changed are resampled (from their
  // recorded per-tree seeds), the rest are spliced in, and the result
  // is bitwise identical to a full rebuild at the same version.
  // Topology batches — and any repair that fails — take the full
  // rebuild. Consecutive applies coalesce: a refresh always targets
  // the newest snapshot, so intermediate versions may never be served
  // (min_version waiters are satisfied by any version >= theirs).
  ApplyResult apply(const MutationBatch& batch);

  // Enqueue a rebuild toward the store's latest snapshot without
  // mutating (useful when another engine — or direct store access —
  // published versions this engine has not picked up). No-op if the
  // serving hierarchy is already current. Returns the store's latest
  // version.
  GraphVersion refresh();

  // Block until the serving hierarchy reaches `version` (true). Returns
  // false when that cannot currently happen — no rebuild is pending
  // that could reach the version (it failed, was dropped at shutdown,
  // or was never scheduled) — or when `timeout_seconds` elapses first
  // (negative = no deadline). A later apply()/refresh() can make a
  // fresh wait succeed after a false return.
  bool wait_for_version(GraphVersion version, double timeout_seconds = -1.0);

  // Force-persist the store's latest snapshot and the currently serving
  // hierarchy to the store's data dir (see GraphStoreOptions), so a
  // restarted process cold-opens without a rebuild. Requires a store
  // with a configured data_dir (throws RequirementError otherwise —
  // kPreconditionFailed at the serve boundary). Returns the persisted
  // snapshot version. With PersistPolicy::kOnPublish this mostly
  // no-ops: snapshots and swapped-in hierarchies are already saved.
  GraphVersion persist();

  [[nodiscard]] GraphVersion serving_version() const;
  [[nodiscard]] GraphVersion latest_version() const;
  // The snapshot queries are currently served from (graph + version).
  [[nodiscard]] GraphSnapshot snapshot() const;
  [[nodiscard]] const std::shared_ptr<GraphStore>& store() const;

  // --- synchronous compatibility shims over submit ---
  // Execute a batch; outcome[i] corresponds to queries[i].
  std::vector<QueryOutcome> run_batch(const std::vector<EngineQuery>& queries);
  // Single-query convenience; equivalent to a batch of one.
  QueryOutcome run(const EngineQuery& query);

  // The currently served graph. The reference stays valid as long as
  // the store retains the snapshot — for the engine's lifetime with the
  // FlowEngine(Graph) shim (its private store keeps every snapshot),
  // but potentially only until the next swap on a shared GraphStore
  // constructed with a history_limit. After an apply() it refers to a
  // superseded snapshot either way; take snapshot() for version-aware,
  // lifetime-safe access.
  [[nodiscard]] const Graph& graph() const;
  // The currently serving hierarchy. Unlike graph(), the reference is
  // only guaranteed until the next rebuild swap retires it — do not
  // hold it across apply()/refresh().
  [[nodiscard]] const ShermanHierarchy& hierarchy() const;
  [[nodiscard]] const SolverRegistry& registry() const;
  [[nodiscard]] const EngineOptions& options() const;
  // The serving snapshot's shard assignment (null when shards == 0).
  // Like hierarchy(), superseded by the next rebuild swap — but the
  // shared_ptr keeps a grabbed assignment valid indefinitely.
  [[nodiscard]] std::shared_ptr<const ShardAssignment> shard_assignment()
      const;
  // Snapshot of the counters (taken under the stats lock; safe to call
  // while queries are in flight).
  [[nodiscard]] EngineStats stats() const;

 private:
  struct Core;

  template <typename Query, typename Payload>
  Ticket<Payload> submit_impl(
      Query query, std::function<void(const Result<Payload>&)> done,
      SubmitOptions opts);

  void schedule_rebuild();

  std::shared_ptr<Core> core_;
  std::shared_ptr<QueryDispatcher> pool_;
};

}  // namespace dmf
