#include "engine/registry.h"

#include <utility>

#include "util/require.h"

namespace dmf {

void SolverRegistry::add(SolverEntry entry) {
  DMF_REQUIRE(!entry.name.empty(), "SolverRegistry: entry needs a name");
  DMF_REQUIRE(entry.eligible != nullptr,
              "SolverRegistry: entry needs a predicate");
  entries_.push_back(std::move(entry));
}

const SolverEntry& SolverRegistry::select(const QueryProfile& profile) const {
  for (const SolverEntry& entry : entries_) {
    if (entry.eligible(profile)) return entry;
  }
  DMF_REQUIRE(false, "SolverRegistry: no solver eligible for profile");
  return entries_.front();  // unreachable
}

const SolverEntry& SolverRegistry::entry(std::size_t i) const {
  DMF_REQUIRE(i < entries_.size(), "SolverRegistry: bad entry index");
  return entries_[i];
}

SolverRegistry SolverRegistry::standard(NodeId exact_cutoff_nodes,
                                        double exact_epsilon) {
  const auto exactish = [exact_cutoff_nodes,
                         exact_epsilon](const QueryProfile& p) {
    return p.want_exact || p.n <= exact_cutoff_nodes ||
           p.epsilon <= exact_epsilon;
  };
  SolverRegistry registry;
  registry.add({"congest-push-relabel", SolverKind::kCongestSim,
                [](const QueryProfile& p) { return p.rounds_query; }});
  registry.add({"push-relabel-exact", SolverKind::kPushRelabel,
                [exactish](const QueryProfile& p) {
                  return exactish(p) && p.m >= 8 * std::max<EdgeId>(1, p.n);
                }});
  registry.add({"dinic-exact", SolverKind::kDinic, exactish});
  registry.add({"sherman-approx", SolverKind::kSherman,
                [](const QueryProfile&) { return true; }});
  return registry;
}

}  // namespace dmf
