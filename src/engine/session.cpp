#include "engine/session.h"

#include <string>
#include <thread>
#include <utility>

namespace dmf {

namespace {

bool message_contains(const char* what, const char* fragment) {
  return std::string(what).find(fragment) != std::string::npos;
}

}  // namespace

int resolve_worker_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ErrorCode classify_error(const std::exception& e) {
  const auto* requirement = dynamic_cast<const RequirementError*>(&e);
  if (requirement == nullptr) return ErrorCode::kInternalError;
  const char* what = e.what();
  if (message_contains(what, "isolated terminal")) {
    return ErrorCode::kIsolatedTerminal;
  }
  if (message_contains(what, "zero-congestion") ||
      message_contains(what, "degenerate demand") ||
      message_contains(what, "no feasible flow")) {
    return ErrorCode::kNumericalFailure;
  }
  if (message_contains(what, "bad source") ||
      message_contains(what, "bad sink") ||
      message_contains(what, "bad terminals") ||
      message_contains(what, "empty terminal set") ||
      message_contains(what, "must be disjoint") ||
      message_contains(what, "demand size mismatch") ||
      message_contains(what, "demand must sum to zero")) {
    return ErrorCode::kInvalidQuery;
  }
  return ErrorCode::kPreconditionFailed;
}

WorkerPool::WorkerPool(int threads) {
  const int count = resolve_worker_threads(threads);
  thread_count_ = count;
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

std::uint64_t WorkerPool::enqueue(int priority, std::function<void()> run,
                                  CancelFn cancelled, bool parked) {
  auto state = std::make_shared<TaskState>();
  state->priority = priority;
  state->run = std::move(run);
  state->cancelled = std::move(cancelled);
  if (parked) state->status.store(kParked);
  {
    MutexLock lock(mutex_);
    DMF_REQUIRE(!stopping_, "WorkerPool: submit after shutdown");
    state->id = next_id_++;
    by_id_.emplace(state->id, state);
    if (!parked) queue_.push(QueueEntry{priority, state->id, state});
    ++pending_;
  }
  if (!parked) work_cv_.notify_one();
  return state->id;
}

std::uint64_t WorkerPool::submit(int priority, std::function<void()> run,
                                 CancelFn cancelled) {
  return enqueue(priority, std::move(run), std::move(cancelled),
                 /*parked=*/false);
}

std::uint64_t WorkerPool::submit_parked(int priority,
                                        std::function<void()> run,
                                        CancelFn cancelled) {
  return enqueue(priority, std::move(run), std::move(cancelled),
                 /*parked=*/true);
}

bool WorkerPool::release(std::uint64_t id) {
  // The whole transition happens under the pool lock so it can never
  // interleave with shutdown(): either the task lands in the queue
  // before the drain (and resolves kShutdown) or release observes
  // stopping_ and leaves it parked for shutdown's kVersionUnavailable
  // sweep.
  {
    MutexLock lock(mutex_);
    const auto it = by_id_.find(id);
    if (it == by_id_.end() || stopping_) return false;
    const std::shared_ptr<TaskState>& state = it->second;
    int expected = kParked;
    if (!state->status.compare_exchange_strong(expected, kQueued)) {
      return false;
    }
    queue_.push(QueueEntry{state->priority, state->id, state});
  }
  work_cv_.notify_one();
  return true;
}

bool WorkerPool::fail_parked(std::uint64_t id, ErrorCode code) {
  std::shared_ptr<TaskState> state;
  {
    MutexLock lock(mutex_);
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    state = it->second;
  }
  int expected = kParked;
  if (!state->status.compare_exchange_strong(expected, kCancelled)) {
    return false;
  }
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  state->cancelled(code);
  finish_one(id);
  return true;
}

bool WorkerPool::cancel(std::uint64_t id) {
  std::shared_ptr<TaskState> state;
  {
    MutexLock lock(mutex_);
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    state = it->second;
  }
  int expected = kQueued;
  if (!state->status.compare_exchange_strong(expected, kCancelled)) {
    expected = kParked;
    if (!state->status.compare_exchange_strong(expected, kCancelled)) {
      return false;
    }
  }
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  state->cancelled(ErrorCode::kCancelled);
  finish_one(id);
  return true;
}

void WorkerPool::wait_all() {
  MutexLock lock(mutex_);
  while (pending_ != 0) idle_cv_.wait(mutex_);
}

void WorkerPool::shutdown() {
  std::vector<std::shared_ptr<TaskState>> to_cancel;
  std::vector<std::shared_ptr<TaskState>> parked;
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      // Another caller won the handshake and owns the join. Wait for it
      // rather than racing it to workers_ (two threads joining the same
      // std::thread is undefined behavior).
      while (!joined_) idle_cv_.wait(mutex_);
      return;
    }
    stopping_ = true;
    // Drain the queue: whatever a worker has not yet claimed is failed
    // with kShutdown instead of silently dropped (every promise must be
    // fulfilled).
    while (!queue_.empty()) {
      to_cancel.push_back(queue_.top().state);
      queue_.pop();
    }
    // Parked tasks live only in by_id_; the versions they wait for will
    // never be served now.
    for (const auto& [id, state] : by_id_) {
      if (state->status.load() == kParked) parked.push_back(state);
    }
  }
  for (const auto& state : to_cancel) {
    int expected = kQueued;
    if (state->status.compare_exchange_strong(expected, kCancelled)) {
      state->cancelled(ErrorCode::kShutdown);
      finish_one(state->id);
    }
  }
  for (const auto& state : parked) {
    int expected = kParked;
    if (state->status.compare_exchange_strong(expected, kCancelled)) {
      state->cancelled(ErrorCode::kVersionUnavailable);
      finish_one(state->id);
    }
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    MutexLock lock(mutex_);
    joined_ = true;
  }
  idle_cv_.notify_all();
}

void WorkerPool::worker_loop() {
  while (true) {
    std::shared_ptr<TaskState> state;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      state = queue_.top().state;
      queue_.pop();
    }
    int expected = kQueued;
    if (!state->status.compare_exchange_strong(expected, kRunning)) {
      continue;  // cancelled while queued; its CancelFn already ran
    }
    state->run();
    state->status.store(kDone);
    finish_one(state->id);
  }
}

void WorkerPool::finish_one(std::uint64_t id) {
  bool idle = false;
  {
    MutexLock lock(mutex_);
    by_id_.erase(id);
    DMF_REQUIRE(pending_ > 0, "WorkerPool: pending underflow");
    --pending_;
    idle = pending_ == 0;
  }
  if (idle) idle_cv_.notify_all();
}

}  // namespace dmf
