#include "engine/congest_runner.h"

#include <algorithm>

#include "congest/push_relabel_dist.h"
#include "graph/algorithms.h"

namespace dmf {

CongestRunResult CongestRunner::run(const CsrGraph& csr,
                                    const CongestQuery& query) {
  DMF_REQUIRE(csr.is_valid_node(query.source) &&
                  csr.is_valid_node(query.sink) &&
                  query.source != query.sink,
              "CongestRunner: bad terminals");
  congest::DistributedPushRelabelOptions options;
  options.max_rounds = query.max_rounds;
  options.threads = query.threads;
  CongestRunResult out;
  const congest::DistributedPushRelabelResult result =
      run_distributed_push_relabel(csr, query.source, query.sink, options);
  out.flow_value = result.flow_value;
  out.stats = result.stats;

  // Ledger: the simulated rounds split by pulse phase (pulse = 3 rounds:
  // height announcements, pushes, apply+relabel), plus the termination
  // detection a real deployment pays — one O(D) convergecast confirming
  // global settlement, with D measured as the sink's BFS eccentricity.
  const int rounds = result.stats.rounds;
  const int pulses = rounds / 3;
  const int tail = rounds - 3 * pulses;
  out.ledger.charge("pushrel/phase_a_announce", pulses + (tail > 0 ? 1 : 0));
  out.ledger.charge("pushrel/phase_b_push", pulses + (tail > 1 ? 1 : 0));
  out.ledger.charge("pushrel/phase_c_apply_relabel", pulses);
  const std::vector<int> dist = bfs_distances(csr, query.sink);
  int depth = 0;
  for (const int d : dist) depth = std::max(depth, d);
  out.ledger.charge("termination/convergecast", depth + 1);
  return out;
}

}  // namespace dmf
