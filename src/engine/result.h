// Typed query results and the engine's error taxonomy.
//
// FlowEngine v2 replaces the untyped QueryOutcome bag (bool + string +
// three optionals) with one Result<T> per query kind: the payload type
// matches the query statically, and failures carry a structured
// ErrorCode alongside the human-readable message. Library-level
// RequirementError throws are classified into the taxonomy at the engine
// boundary, so callers can branch on `code` instead of parsing strings.
#pragma once

#include <exception>
#include <optional>
#include <string>

#include "graph/graph.h"
#include "util/require.h"

namespace dmf {

// Why a query did not produce a payload. kOk is the success sentinel so a
// Result can carry its code unconditionally.
enum class ErrorCode {
  kOk = 0,
  // The query content is malformed: invalid node ids, s == t, a demand
  // vector of the wrong size or nonzero sum, empty or overlapping
  // terminal sets.
  kInvalidQuery,
  // A multi-terminal query names a terminal with no incident capacity;
  // the super-terminal reduction cannot attach a meaningful virtual edge
  // to it (see build_super_terminal_graph).
  kIsolatedTerminal,
  // The ticket was cancelled while still queued; the query never ran.
  kCancelled,
  // The engine was destroyed (or shut down) with the query still queued.
  kShutdown,
  // The query asked for SubmitOptions::min_version and the engine can
  // no longer satisfy it: it shut down while the query was parked, or
  // the hierarchy rebuild for that version failed.
  kVersionUnavailable,
  // The solver detected a degenerate numerical situation (e.g. a
  // zero-congestion route) it cannot recover from.
  kNumericalFailure,
  // A DMF_REQUIRE precondition tripped inside the solver stack that the
  // engine's up-front validation did not anticipate.
  kPreconditionFailed,
  // Any other exception escaping a query.
  kInternalError,
};

[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidQuery:
      return "invalid_query";
    case ErrorCode::kIsolatedTerminal:
      return "isolated_terminal";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kShutdown:
      return "shutdown";
    case ErrorCode::kVersionUnavailable:
      return "version_unavailable";
    case ErrorCode::kNumericalFailure:
      return "numerical_failure";
    case ErrorCode::kPreconditionFailed:
      return "precondition_failed";
    case ErrorCode::kInternalError:
      return "internal_error";
  }
  return "unknown";
}

struct EngineError {
  ErrorCode code = ErrorCode::kInternalError;
  std::string message;
};

// Map an exception escaping the solver stack to the taxonomy. The
// classification keys on the stable DMF_REQUIRE message fragments; the
// engine validates queries up front, so this is the fallback for
// conditions only the deep machinery can detect.
[[nodiscard]] ErrorCode classify_error(const std::exception& e);

// The engine's per-query result: either an ok() payload plus serving
// metadata, or an ErrorCode + message. Payload access through value()
// is checked.
template <typename T>
struct Result {
  ErrorCode code = ErrorCode::kOk;
  std::string message;  // empty iff ok()
  std::string solver;   // registry entry (or "sherman-route") that served it
  double seconds = 0.0;  // execution wall time; queue wait excluded
  // The graph snapshot version the query was served from. During a
  // background rebuild this lags GraphStore::latest_version (stale
  // serving); SubmitOptions::min_version lower-bounds it per query.
  GraphVersion served_version = 0;
  std::optional<T> payload;  // engaged iff ok()

  [[nodiscard]] bool ok() const { return code == ErrorCode::kOk; }

  [[nodiscard]] const T& value() const& {
    DMF_REQUIRE(ok() && payload.has_value(),
                "Result::value: " + std::string(error_code_name(code)) +
                    (message.empty() ? "" : " — " + message));
    return *payload;
  }
  [[nodiscard]] T&& value() && {
    DMF_REQUIRE(ok() && payload.has_value(),
                "Result::value: " + std::string(error_code_name(code)) +
                    (message.empty() ? "" : " — " + message));
    return *std::move(payload);
  }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  [[nodiscard]] EngineError error() const { return {code, message}; }

  static Result failure(ErrorCode code, std::string message) {
    Result out;
    out.code = code;
    out.message = std::move(message);
    return out;
  }
};

}  // namespace dmf
