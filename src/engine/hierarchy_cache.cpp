#include "engine/hierarchy_cache.h"

#include <utility>

namespace dmf {

std::shared_ptr<const SuperTerminalHierarchy> HierarchyCache::get_or_build(
    std::vector<NodeId> sources, std::vector<NodeId> sinks,
    const Builder& build, bool* hit) {
  std::vector<NodeId> srcs = canonical_terminals(std::move(sources));
  std::vector<NodeId> snks = canonical_terminals(std::move(sinks));
  Key key;
  key.reserve(srcs.size() + snks.size() + 1);
  key.insert(key.end(), srcs.begin(), srcs.end());
  key.push_back(kInvalidNode);
  key.insert(key.end(), snks.begin(), snks.end());

  std::promise<std::shared_ptr<const SuperTerminalHierarchy>> promise;
  EntryFuture future;
  bool building = false;
  std::uint64_t generation = 0;
  {
    MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      future = it->second.future;
    } else {
      ++misses_;
      building = true;
      generation = next_generation_++;
      future = promise.get_future().share();
      lru_.push_front(key);
      entries_.emplace(key, Slot{future, lru_.begin(), generation});
      if (capacity_ > 0 && entries_.size() > capacity_) {
        // Evict the least recently used entry (never the one just
        // inserted: capacity >= 1 keeps it at the front). An in-flight
        // evictee still completes for its current waiters — they hold
        // the shared_future directly; only the map forgets it.
        const Key& victim = lru_.back();
        entries_.erase(victim);
        lru_.pop_back();
      }
    }
  }
  if (hit != nullptr) *hit = !building;
  if (building) {
    try {
      promise.set_value(std::make_shared<const SuperTerminalHierarchy>(
          build(srcs, snks)));
    } catch (...) {
      // Forget the key first (so no new requester joins the doomed
      // future), then fail its current waiters: a transient failure
      // (e.g. memory pressure) must not poison the terminal set for the
      // engine's lifetime.
      drop(key, generation);
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();  // rethrows a builder failure to every requester
}

void HierarchyCache::drop(const Key& key, std::uint64_t generation) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.generation != generation) return;
  lru_.erase(it->second.lru_position);
  entries_.erase(it);
}

std::int64_t HierarchyCache::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::int64_t HierarchyCache::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

std::size_t HierarchyCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void HierarchyCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace dmf
