// CongestRunner: round-complexity queries served by the FlowEngine.
//
// The paper's experiment E1 compares the pipeline's accounted CONGEST
// rounds against the distributed push–relabel strawman. CongestRunner is
// the serving-layer wrapper around that strawman: it runs the
// message-passing PushRelabelProgram on the snapshot's CsrGraph (the
// same packed view every other solver rides) and reports the measured
// RunStats plus a RoundLedger breakdown — per-phase round counts and the
// O(D)-round termination convergecast a real deployment would pay.
//
// CongestQuery goes through FlowEngine::submit() like any other query:
// the SolverRegistry dispatches rounds queries to the
// "congest-push-relabel" entry, the result rides a typed
// Ticket<CongestRunResult>, and EngineStats folds the simulated rounds
// into query_rounds_total.
#pragma once

#include "congest/ledger.h"
#include "congest/network.h"
#include "graph/csr_graph.h"
#include "graph/graph.h"

namespace dmf {

// Round-complexity probe: how many CONGEST rounds does distributed
// push–relabel need to move max flow from `source` to `sink` on the
// serving snapshot?
struct CongestQuery {
  NodeId source = kInvalidNode;
  NodeId sink = kInvalidNode;
  int max_rounds = 0;  // 0: the Ω(n²)-sized default budget
  // Simulator stepping threads. The engine default keeps each query
  // single-threaded — the worker pool already runs queries in parallel;
  // raise it for one big dedicated run.
  int threads = 1;
};

struct CongestRunResult {
  double flow_value = 0.0;
  congest::RunStats stats;
  congest::RoundLedger ledger;  // per-phase breakdown + termination cost
};

class CongestRunner {
 public:
  // Execute the query on a packed snapshot view. Deterministic: the
  // result depends only on the graph and the query content.
  [[nodiscard]] static CongestRunResult run(const CsrGraph& csr,
                                            const CongestQuery& query);
};

}  // namespace dmf
