// Asynchronous query session plumbing for the FlowEngine.
//
// WorkerPool is a persistent pool (created once with the engine, not per
// batch) draining a priority queue of submitted tasks. Each submission
// pairs a run closure with a cancel closure; exactly one of the two ever
// executes, guarded by an atomic per-task state machine, so a queued task
// can be cancelled race-free while workers are popping. wait_all() blocks
// until every submitted task has either run or been cancelled.
//
// Ticket<T> is the caller's handle on one submitted query: a one-shot
// future of Result<T> plus cancellation through a weak reference to the
// pool (safe to poke after the engine is gone). Determinism note: the
// pool orders *execution* by priority, but results are computed purely
// from query content, so neither priority nor pop order can change what a
// ticket yields — only when.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/result.h"
#include "graph/graph.h"
#include "util/thread_annotations.h"

namespace dmf {

// Per-query submission knobs. Priority is a scheduling hint only: higher
// values are popped first; ties execute in submission order.
struct SubmitOptions {
  int priority = 0;
  // Minimum graph snapshot version the query may be served from. 0 (the
  // default) serves from whatever the engine currently holds — possibly
  // a snapshot older than the store's latest while a background rebuild
  // is in flight. A positive value parks the query until a hierarchy of
  // at least that version is swapped in; if the engine shuts down first,
  // or the rebuild for that version fails, the ticket resolves with
  // ErrorCode::kVersionUnavailable. Neither setting ever changes what a
  // query computes for a given snapshot — only which snapshot serves it.
  GraphVersion min_version = 0;
};

// The engine-wide thread-count policy: a positive request is taken
// as-is, 0 means all hardware threads (at least 1). Shared by the
// worker pool and the hierarchy-build parallelism so the two can never
// drift.
[[nodiscard]] int resolve_worker_threads(int requested);

// The execution backend contract the engine (and Ticket) program
// against. Two implementations: WorkerPool (one shared priority queue —
// the classic backend) and ShardedDispatcher (per-shard run-to-
// completion pipelines over SPSC rings, engine/shard_exec.h). The task
// lifecycle contract is shared: each dispatched task pairs a run
// closure with a cancel closure, exactly one of the two ever executes,
// and every task is resolved by shutdown at the latest — queued tasks
// with kShutdown, parked tasks with kVersionUnavailable.
class QueryDispatcher {
 public:
  // Fulfills the task's promise with the given terminal code without
  // running the query.
  using CancelFn = std::function<void(ErrorCode)>;

  // Lane for tasks that must never queue behind (or occupy) the query
  // lanes — hierarchy rebuilds. The sharded backend runs them on a
  // dedicated control thread; WorkerPool folds them into its one queue
  // at their priority.
  static constexpr int kControlLane = -1;

  virtual ~QueryDispatcher() = default;

  // Enqueue a task onto `lane`; returns its id (for cancel()). `run`
  // must not throw. Backends without lanes ignore the argument.
  virtual std::uint64_t dispatch(int priority, std::function<void()> run,
                                 CancelFn cancelled, int lane) = 0;

  // Enqueue a task in the *parked* state: it holds an id (cancellable,
  // counted by wait_all) but no worker will pop it until release(id)
  // moves it into its lane. The engine parks queries whose
  // SubmitOptions::min_version is ahead of the serving snapshot.
  virtual std::uint64_t dispatch_parked(int priority,
                                        std::function<void()> run,
                                        CancelFn cancelled, int lane) = 0;

  // Move a parked task into its runnable lane. Returns false if the
  // task is not parked anymore (released before, cancelled, unknown) or
  // the dispatcher is shutting down (shutdown resolves parked tasks
  // itself).
  virtual bool release(std::uint64_t id) = 0;

  // Resolve a still-parked task with `code` without ever running it.
  // Returns false if the task is not parked anymore.
  virtual bool fail_parked(std::uint64_t id, ErrorCode code) = 0;

  // Cancel a still-queued (or still-parked) task: its CancelFn runs
  // (with kCancelled) and true is returned. Returns false if the task
  // already started, finished, was cancelled before, or the id is
  // unknown.
  virtual bool cancel(std::uint64_t id) = 0;

  // Block until every task dispatched so far has run or been cancelled.
  virtual void wait_all() = 0;

  // Resolve everything still queued/parked and join the workers.
  // Idempotent.
  virtual void shutdown() = 0;

  [[nodiscard]] virtual int threads() const = 0;
  [[nodiscard]] virtual std::int64_t cancelled_count() const = 0;
};

class WorkerPool : public QueryDispatcher {
 public:
  using CancelFn = QueryDispatcher::CancelFn;

  explicit WorkerPool(int threads);
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueue a task; returns its id (for cancel()). `run` must not throw.
  std::uint64_t submit(int priority, std::function<void()> run,
                       CancelFn cancelled);

  // Parked form of submit; see QueryDispatcher::dispatch_parked.
  std::uint64_t submit_parked(int priority, std::function<void()> run,
                              CancelFn cancelled);

  // QueryDispatcher interface. The pool has one queue: lanes are
  // ignored, priorities order execution.
  std::uint64_t dispatch(int priority, std::function<void()> run,
                         CancelFn cancelled, int lane) override {
    (void)lane;
    return submit(priority, std::move(run), std::move(cancelled));
  }
  std::uint64_t dispatch_parked(int priority, std::function<void()> run,
                                CancelFn cancelled, int lane) override {
    (void)lane;
    return submit_parked(priority, std::move(run), std::move(cancelled));
  }

  // Move a parked task into the runnable queue at its submission
  // priority. Returns false if the task is not parked anymore (released
  // before, cancelled, unknown) or the pool is shutting down (shutdown
  // resolves parked tasks itself).
  bool release(std::uint64_t id) override;

  // Resolve a still-parked task with `code` without ever running it
  // (used when the version a parked query waits for can never be
  // served). Returns false if the task is not parked anymore.
  bool fail_parked(std::uint64_t id, ErrorCode code) override;

  // Cancel a still-queued (or still-parked) task: its CancelFn runs
  // (with kCancelled) and true is returned. Returns false if the task
  // already started, finished, was cancelled before, or the id is
  // unknown.
  bool cancel(std::uint64_t id) override;

  // Block until every task submitted so far has run or been cancelled.
  void wait_all() override;

  // Cancel everything still queued (with kShutdown) and everything
  // still parked (with kVersionUnavailable — the version they were
  // waiting for will never arrive), then join the workers. Idempotent;
  // called by the destructor.
  void shutdown() override;

  [[nodiscard]] int threads() const override { return thread_count_; }
  [[nodiscard]] std::int64_t cancelled_count() const override {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  enum : int {
    kQueued = 0,
    kRunning = 1,
    kCancelled = 2,
    kDone = 3,
    kParked = 4
  };

  struct TaskState {
    std::uint64_t id = 0;
    int priority = 0;  // retained so release() re-queues at the same rank
    std::atomic<int> status{kQueued};
    std::function<void()> run;
    CancelFn cancelled;
  };

  struct QueueEntry {
    int priority = 0;
    std::uint64_t seq = 0;
    std::shared_ptr<TaskState> state;
    // priority_queue pops the "largest": highest priority, then earliest
    // submission.
    bool operator<(const QueueEntry& other) const {
      if (priority != other.priority) return priority < other.priority;
      return seq > other.seq;
    }
  };

  std::uint64_t enqueue(int priority, std::function<void()> run,
                        CancelFn cancelled, bool parked);
  void worker_loop();
  void finish_one(std::uint64_t id);

  mutable Mutex mutex_;
  CondVar work_cv_;  // workers: queue non-empty or stopping
  CondVar idle_cv_;  // wait_all: pending reached zero; shutdown: joined
  std::priority_queue<QueueEntry> queue_ DMF_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::shared_ptr<TaskState>> by_id_
      DMF_GUARDED_BY(mutex_);
  std::uint64_t next_id_ DMF_GUARDED_BY(mutex_) = 1;
  // Submitted but not yet run/cancelled.
  std::size_t pending_ DMF_GUARDED_BY(mutex_) = 0;
  bool stopping_ DMF_GUARDED_BY(mutex_) = false;
  bool joined_ DMF_GUARDED_BY(mutex_) = false;  // shutdown finished joining
  std::atomic<std::int64_t> cancelled_{0};
  int thread_count_ = 0;  // set once in the constructor, then read-only
  // Filled by the constructor before any concurrency exists; joined by
  // the single shutdown() caller that wins the stopping_ handshake, so
  // never touched by two threads at once.
  std::vector<std::thread> workers_;
};

// Handle on one submitted query. Move-only (the future is one-shot);
// default-constructed tickets are invalid.
template <typename T>
class Ticket {
 public:
  Ticket() = default;

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool valid() const { return future_.valid(); }

  // Cancel if still queued. True means the query will never run and
  // get() yields ErrorCode::kCancelled; false means it already started
  // (or finished) and get() yields its real result.
  bool cancel() {
    if (auto dispatcher = pool_.lock()) return dispatcher->cancel(id_);
    return false;
  }

  // wait()/ready()/get() require valid(): a default-constructed,
  // moved-from, or already-consumed ticket trips a DMF_REQUIRE instead
  // of the undefined behavior std::future exhibits.
  void wait() const {
    DMF_REQUIRE(future_.valid(), "Ticket::wait: invalid ticket");
    future_.wait();
  }
  [[nodiscard]] bool ready() const {
    DMF_REQUIRE(future_.valid(), "Ticket::ready: invalid ticket");
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  // Blocks until the result is available. One-shot: invalidates the
  // ticket.
  [[nodiscard]] Result<T> get() {
    DMF_REQUIRE(future_.valid(),
                "Ticket::get: invalid ticket (already consumed?)");
    return future_.get();
  }

 private:
  friend class FlowEngine;
  Ticket(std::uint64_t id, std::future<Result<T>> future,
         std::weak_ptr<QueryDispatcher> pool)
      : id_(id), future_(std::move(future)), pool_(std::move(pool)) {}

  std::uint64_t id_ = 0;
  std::future<Result<T>> future_;
  std::weak_ptr<QueryDispatcher> pool_;
};

}  // namespace dmf
