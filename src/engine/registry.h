// Solver selection for the FlowEngine.
//
// The engine serves heterogeneous max-flow queries against one graph. Not
// every query should pay the approximate machinery: tiny instances are
// solved faster (and exactly) by the classical baselines, and a caller may
// demand exactness outright. The registry holds an ordered list of solver
// entries, each with an eligibility predicate over the query profile
// (instance size, requested accuracy); selection returns the first
// eligible entry. The standard registry dispatches to Dinic or
// push-relabel for small-or-exact queries and to the shared Sherman
// hierarchy otherwise.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace dmf {

enum class SolverKind {
  kDinic,        // exact, best on sparse residual graphs
  kPushRelabel,  // exact, preferred on dense instances
  kSherman,      // (1+eps)-approximate on the shared hierarchy
  kCongestSim,   // message-level CONGEST simulation (round complexity)
};

// What the registry knows about a query when choosing a solver.
struct QueryProfile {
  NodeId n = 0;
  EdgeId m = 0;
  double epsilon = 0.25;    // requested accuracy (<= 0 means "exact")
  bool want_exact = false;  // caller demands an exact answer
  // The caller asks for measured CONGEST round complexity, not a flow:
  // only a simulator-backed entry can serve it.
  bool rounds_query = false;
};

struct SolverEntry {
  std::string name;
  SolverKind kind = SolverKind::kSherman;
  // Returns true when this solver should serve the profile. Entries are
  // consulted in registration order; the first hit wins.
  std::function<bool(const QueryProfile&)> eligible;
};

class SolverRegistry {
 public:
  void add(SolverEntry entry);

  [[nodiscard]] const SolverEntry& select(const QueryProfile& profile) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const SolverEntry& entry(std::size_t i) const;

  // The default policy:
  //   * the CONGEST simulator for round-complexity queries,
  //   * push-relabel for exact-or-tiny dense instances (m >= 8 n),
  //   * Dinic for every other exact-or-tiny instance,
  //   * Sherman for the rest.
  // "Tiny" means n <= exact_cutoff_nodes; "exact" means want_exact or
  // epsilon <= exact_epsilon (an accuracy no approximate run can promise).
  static SolverRegistry standard(NodeId exact_cutoff_nodes,
                                 double exact_epsilon);

 private:
  std::vector<SolverEntry> entries_;
};

}  // namespace dmf
