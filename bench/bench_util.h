// Shared helpers for the experiment harness (E1..E12): families of input
// graphs and simple aligned table printing. Each bench binary regenerates
// one table of EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace dmf::bench {

inline Graph make_family(const std::string& family, NodeId n, Rng& rng) {
  if (family == "grid") {
    int side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    return make_grid(side, side, {1, 8}, rng);
  }
  if (family == "torus") {
    int side = 3;
    while ((side + 1) * (side + 1) <= n) ++side;
    return make_torus(side, side, {1, 8}, rng);
  }
  if (family == "gnp") {
    return make_gnp_connected(n, 4.0 / static_cast<double>(n), {1, 8}, rng);
  }
  if (family == "regular") {
    const NodeId even = (n % 2 == 0) ? n : n + 1;
    return make_random_regular(even, 4, {1, 8}, rng);
  }
  if (family == "chords") {
    return make_tree_plus_chords(n, n / 2, {1, 8}, rng);
  }
  DMF_REQUIRE(false, "make_family: unknown family " + family);
  return Graph();
}

// Minimal fixed-width row printer.
inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double x, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, x);
  return buffer;
}

inline std::string fmt_int(long long x) { return std::to_string(x); }

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n==== %s: %s ====\n", id.c_str(), title.c_str());
}

}  // namespace dmf::bench
