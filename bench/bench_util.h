// Shared helpers for the experiment harness (E1..E12): families of input
// graphs and simple aligned table printing. Each bench binary regenerates
// one table of EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace dmf::bench {

inline Graph make_family(const std::string& family, NodeId n, Rng& rng) {
  if (family == "grid") {
    int side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    return make_grid(side, side, {1, 8}, rng);
  }
  if (family == "torus") {
    int side = 3;
    while ((side + 1) * (side + 1) <= n) ++side;
    return make_torus(side, side, {1, 8}, rng);
  }
  if (family == "gnp") {
    return make_gnp_connected(n, 4.0 / static_cast<double>(n), {1, 8}, rng);
  }
  if (family == "regular") {
    const NodeId even = (n % 2 == 0) ? n : n + 1;
    return make_random_regular(even, 4, {1, 8}, rng);
  }
  if (family == "chords") {
    return make_tree_plus_chords(n, n / 2, {1, 8}, rng);
  }
  DMF_REQUIRE(false, "make_family: unknown family " + family);
  return Graph();
}

// Minimal fixed-width row printer.
inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double x, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, x);
  return buffer;
}

inline std::string fmt_int(long long x) { return std::to_string(x); }

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n==== %s: %s ====\n", id.c_str(), title.c_str());
}

// --- machine-readable artifacts ---------------------------------------------
// Alongside its text table, a bench binary emits one flat JSON array of
// records (BENCH_e13.json, BENCH_e14.json, ...) so the perf trajectory
// stays trackable across PRs without parsing the human-facing log.

class JsonValue {
 public:
  JsonValue(double v) {  // NOLINT(google-explicit-constructor)
    // A non-finite metric (e.g. a latency that hit Inf past saturation)
    // must degrade the record, not corrupt the document: %.9g would
    // print bare `inf`/`nan`, which is not JSON.
    if (!std::isfinite(v)) {
      encoded_ = "null";
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", v);
    encoded_ = buffer;
  }
  JsonValue(int v) : encoded_(std::to_string(v)) {}  // NOLINT
  JsonValue(long long v) : encoded_(std::to_string(v)) {}  // NOLINT
  JsonValue(const char* v) : encoded_(quote(v)) {}  // NOLINT
  JsonValue(const std::string& v) : encoded_(quote(v)) {}  // NOLINT

  [[nodiscard]] const std::string& encoded() const { return encoded_; }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\b':
          out += "\\b";
          break;
        case '\f':
          out += "\\f";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buffer;
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
    return out;
  }
  std::string encoded_;
};

using JsonRecord = std::vector<std::pair<std::string, JsonValue>>;

class JsonArtifact {
 public:
  explicit JsonArtifact(std::string path) : path_(std::move(path)) {}

  void add(const JsonRecord& record) { records_.push_back(record); }

  // Writes the collected records and reports where. Call once at the
  // end of main().
  void write() const {
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "WARNING: cannot write %s\n", path_.c_str());
      return;
    }
    std::fputs("[\n", out);
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fputs("  {", out);
      for (std::size_t f = 0; f < records_[i].size(); ++f) {
        std::fprintf(out, "%s\"%s\": %s", f == 0 ? "" : ", ",
                     records_[i][f].first.c_str(),
                     records_[i][f].second.encoded().c_str());
      }
      std::fprintf(out, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fputs("]\n", out);
    std::fclose(out);
    std::printf("\nwrote %s (%d records)\n", path_.c_str(),
                static_cast<int>(records_.size()));
  }

 private:
  std::string path_;
  std::vector<JsonRecord> records_;
};

}  // namespace dmf::bench
