// E10 (Lemmas 8.6/8.7): measured embedding congestion between the graph
// and its j-tree. We route every multigraph edge through the j-tree
// along the lemma's paths (tree path inside a component; via portals and
// the dedicated core edge across components) and report the worst
// relative load on forest links — the lemmas promise O(1).
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "jtree/jtree.h"
#include "lsst/akpw.h"
#include "util/stats.h"

namespace {

using namespace dmf;

double embedding_congestion(const Multigraph& mg, const JTree& jt) {
  const auto nn = static_cast<std::size_t>(mg.num_nodes());
  std::vector<int> depth(nn, 0);
  for (NodeId v = 0; v < mg.num_nodes(); ++v) {
    int d = 0;
    for (NodeId x = v;
         jt.forest_parent[static_cast<std::size_t>(x)] != kInvalidNode;
         x = jt.forest_parent[static_cast<std::size_t>(x)]) {
      ++d;
    }
    depth[static_cast<std::size_t>(v)] = d;
  }
  std::vector<double> load(nn, 0.0);
  const auto add_path = [&](NodeId a, NodeId b, double cap) {
    while (depth[static_cast<std::size_t>(a)] >
           depth[static_cast<std::size_t>(b)]) {
      load[static_cast<std::size_t>(a)] += cap;
      a = jt.forest_parent[static_cast<std::size_t>(a)];
    }
    while (depth[static_cast<std::size_t>(b)] >
           depth[static_cast<std::size_t>(a)]) {
      load[static_cast<std::size_t>(b)] += cap;
      b = jt.forest_parent[static_cast<std::size_t>(b)];
    }
    while (a != b) {
      load[static_cast<std::size_t>(a)] += cap;
      load[static_cast<std::size_t>(b)] += cap;
      a = jt.forest_parent[static_cast<std::size_t>(a)];
      b = jt.forest_parent[static_cast<std::size_t>(b)];
    }
  };
  for (const MultiEdge& e : mg.edges()) {
    if (jt.portal[static_cast<std::size_t>(e.u)] ==
        jt.portal[static_cast<std::size_t>(e.v)]) {
      add_path(e.u, e.v, e.cap);
    } else {
      add_path(e.u, jt.portal[static_cast<std::size_t>(e.u)], e.cap);
      add_path(e.v, jt.portal[static_cast<std::size_t>(e.v)], e.cap);
    }
  }
  double worst = 0.0;
  for (NodeId v = 0; v < mg.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (jt.forest_parent[vi] != kInvalidNode) {
      worst = std::max(worst, load[vi] / jt.forest_cap[vi]);
    }
  }
  return worst;
}

}  // namespace

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E10", "graph -> j-tree embedding congestion (Lemma 8.6)");
  print_row({"family", "j", "portals", "cong_mean", "cong_max"});
  // Heterogeneous capacities (ratio 64) populate several rload classes so
  // F' is non-trivial, and the Lemma 8.2 random cut set is enabled as in
  // the hierarchy — this is the construction as actually used.
  for (const std::string family : {"gnp", "grid", "regular"}) {
    for (const int j : {4, 8, 16}) {
      Summary congestion;
      Summary portals;
      for (int trial = 0; trial < 4; ++trial) {
        Rng rng(10000 + j * 31 + trial);
        Graph g = make_family(family, 100, rng);
        for (EdgeId e = 0; e < g.num_edges(); ++e) {
          g.set_capacity(e, static_cast<double>(rng.next_int(1, 64)));
        }
        Multigraph mg = Multigraph::from_graph(g);
        const LowStretchTreeResult lsst =
            akpw_low_stretch_tree(mg, AkpwOptions{}, rng);
        const RootedTree tree = build_rooted_tree_mg(mg, lsst.tree_edges, 0);
        const std::vector<double> sizes(
            static_cast<std::size_t>(mg.num_nodes()), 1.0);
        JTreeOptions options;
        options.j = j;
        options.sqrt_target = std::sqrt(static_cast<double>(g.num_nodes()));
        const JTree jt = build_jtree(mg, tree, sizes, options, rng);
        congestion.add(embedding_congestion(mg, jt));
        portals.add(static_cast<double>(jt.portal_count));
      }
      print_row({family, fmt_int(j), fmt(portals.mean(), 1),
                 fmt(congestion.mean(), 2), fmt(congestion.max(), 2)});
    }
  }
  std::printf("\nexpected shape: congestion O(1) — a small constant "
              "independent of family and j (Lemma 8.6's promise).\n");
  return 0;
}
