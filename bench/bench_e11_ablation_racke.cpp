// E11 (ablation, §3 item 4): the recursive j-tree hierarchy vs the
// non-recursive Räcke full-tree distribution. Räcke trees are built
// sequentially on the whole graph (the paper's reason to avoid them:
// the distribution has near-linear size and must be built tree by
// tree); the hierarchy pays polylog more per sample but parallelizes
// across levels. We compare approximator quality (empirical alpha) and
// the accounted CONGEST build rounds at equal sample counts.
#include "baselines/dinic.h"
#include "bench_util.h"
#include "capprox/approximator.h"
#include "capprox/hierarchy.h"
#include "capprox/racke.h"
#include "util/stats.h"

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E11", "Räcke full trees vs recursive j-tree hierarchy");
  print_row({"family", "n", "method", "alpha", "lower_viol", "rounds"});
  for (const std::string family : {"gnp", "grid"}) {
    for (const NodeId n : {64, 144}) {
      const int k = 8;
      // --- Räcke ---
      {
        Rng rng(11000 + n);
        const Graph g = make_family(family, n, rng);
        RackeOptions options;
        options.num_trees = k;
        const RackeDistribution dist = build_racke_trees(g, options, rng);
        const CongestionApproximator approx(dist.trees);
        const AlphaEstimate est = estimate_alpha(g, approx, 20, rng);
        print_row({family, fmt_int(g.num_nodes()), "racke",
                   fmt(est.alpha, 2), fmt(est.lower_violation, 6),
                   fmt(dist.rounds, 0)});
      }
      // --- Hierarchy ---
      {
        Rng rng(11000 + n);
        const Graph g = make_family(family, n, rng);
        const std::vector<VirtualTreeSample> samples =
            sample_virtual_trees(g, k, HierarchyOptions{}, rng);
        double rounds = 0.0;
        for (const auto& s : samples) rounds += s.rounds;
        const CongestionApproximator approx =
            CongestionApproximator::from_samples(samples);
        const AlphaEstimate est = estimate_alpha(g, approx, 20, rng);
        print_row({family, fmt_int(g.num_nodes()), "hierarchy",
                   fmt(est.alpha, 2), fmt(est.lower_violation, 6),
                   fmt(rounds, 0)});
      }
    }
  }
  std::printf("\nexpected shape: comparable alpha; at laptop n the "
              "sequential Räcke build is cheaper in rounds, but its cost "
              "scales with the distribution size ~O(m) while the "
              "hierarchy's per-sample cost stays (D+sqrt n) n^o(1) — the "
              "crossover is the paper's point.\n");
  return 0;
}
