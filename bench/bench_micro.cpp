// E13: micro-benchmarks of the core data-structure operations
// (google-benchmark). These are the per-iteration costs behind the
// wall-clock of the pipeline: BFS, tree loads, R apply / R^T apply,
// LSST construction, and the exact baselines.
#include <benchmark/benchmark.h>

#include "baselines/dinic.h"
#include "capprox/approximator.h"
#include "capprox/hierarchy.h"
#include "graph/algorithms.h"
#include "graph/csr_graph.h"
#include "graph/flow.h"
#include "graph/generators.h"
#include "graph/tree.h"
#include "lsst/akpw.h"
#include "util/rng.h"

namespace {

using namespace dmf;

Graph bench_graph(std::int64_t n) {
  Rng rng(static_cast<std::uint64_t>(n) * 2 + 1);
  return make_gnp_connected(static_cast<NodeId>(n),
                            4.0 / static_cast<double>(n), {1, 10}, rng);
}

void BM_BfsTree(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_bfs_tree(g, 0).height);
  }
}
BENCHMARK(BM_BfsTree)->Arg(256)->Arg(1024)->Arg(4096);

// The same BFS over the packed CSR rows — the layout every solver hot
// loop now traverses. Identical output (CSR preserves adjacency order);
// the delta against BM_BfsTree is pure representation.
void BM_CsrBfsTree(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  const CsrGraph csr(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_bfs_tree(csr, 0).height);
  }
}
BENCHMARK(BM_CsrBfsTree)->Arg(256)->Arg(1024)->Arg(4096);

// Publish-time cost of packing a snapshot's CSR view (what
// GraphStore::apply pays on a structural batch).
void BM_CsrBuild(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    const CsrGraph csr(g);
    benchmark::DoNotOptimize(csr.degree(0));
  }
}
BENCHMARK(BM_CsrBuild)->Arg(256)->Arg(1024)->Arg(4096);

// Weighted-degree sweep: per-node capacity accumulation, adjacency
// vectors vs CSR rows.
void BM_AdjacencyWeightedSweep(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    double total = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) total += g.weighted_degree(v);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AdjacencyWeightedSweep)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CsrWeightedSweep(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  const CsrGraph csr(g);
  for (auto _ : state) {
    double total = 0.0;
    for (NodeId v = 0; v < csr.num_nodes(); ++v) {
      total += csr.weighted_degree(v);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CsrWeightedSweep)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TreeEdgeLoads(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  const RootedTree tree = bfs_spanning_tree(g, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree_edge_loads(g, tree).size());
  }
}
BENCHMARK(BM_TreeEdgeLoads)->Arg(256)->Arg(1024)->Arg(4096);

void BM_AkpwLsst(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  const Multigraph mg = Multigraph::from_graph(g);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        akpw_low_stretch_tree(mg, AkpwOptions{}, rng).tree_edges.size());
  }
}
BENCHMARK(BM_AkpwLsst)->Arg(256)->Arg(1024);

void BM_SampleVirtualTree(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sample_virtual_tree(g, HierarchyOptions{}, rng).levels);
  }
}
BENCHMARK(BM_SampleVirtualTree)->Arg(256)->Arg(1024);

void BM_ApproximatorApply(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  Rng rng(13);
  const std::vector<VirtualTreeSample> samples =
      sample_virtual_trees(g, 8, HierarchyOptions{}, rng);
  const CongestionApproximator approx =
      CongestionApproximator::from_samples(samples);
  const std::vector<double> b =
      st_demand(g.num_nodes(), 0, g.num_nodes() - 1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx.congestion_norm(b));
  }
}
BENCHMARK(BM_ApproximatorApply)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DinicExact(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dinic_max_flow_value(g, 0, g.num_nodes() - 1));
  }
}
BENCHMARK(BM_DinicExact)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
