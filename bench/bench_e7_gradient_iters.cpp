// E7 (Algorithm 2 analysis): AlmostRoute iteration counts. Sherman's
// bound is O(alpha^2 eps^-3 log n); we sweep eps at fixed alpha and alpha
// at fixed eps, reporting measured iterations and the local scaling
// exponent d log(iters) / d log(1/eps) (expected to sit below 3 — the
// bound is a worst case).
#include <cmath>

#include "bench_util.h"
#include "capprox/racke.h"
#include "graph/flow.h"
#include "maxflow/almost_route.h"
#include "util/stats.h"

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  Rng rng(7000);
  const Graph g = make_family("gnp", 60, rng);
  RackeOptions ropt;
  ropt.num_trees = 8;
  const CongestionApproximator approx(
      build_racke_trees(g, ropt, rng).trees);
  const std::vector<double> b = st_demand(g.num_nodes(), 0,
                                          g.num_nodes() - 1, 1.0);

  print_header("E7a", "AlmostRoute iterations vs eps (alpha fixed = 2)");
  print_row({"eps", "iterations", "converged", "slope_vs_prev"});
  double prev_iters = 0.0;
  double prev_eps = 0.0;
  for (const double eps : {0.6, 0.45, 0.3, 0.2, 0.15}) {
    AlmostRouteOptions options;
    options.epsilon = eps;
    options.alpha = 2.0;
    options.max_iterations = 500000;
    const AlmostRouteResult result = almost_route(g, approx, b, options);
    std::string slope = "-";
    if (prev_iters > 0.0) {
      slope = fmt(std::log(static_cast<double>(result.iterations) /
                           prev_iters) /
                      std::log(prev_eps / eps),
                  2);
    }
    print_row({fmt(eps, 2), fmt_int(result.iterations),
               result.converged ? "yes" : "NO", slope});
    prev_iters = static_cast<double>(result.iterations);
    prev_eps = eps;
  }

  print_header("E7b", "AlmostRoute iterations vs alpha (eps fixed = 0.3)");
  print_row({"alpha", "iterations", "converged", "slope_vs_prev"});
  prev_iters = 0.0;
  double prev_alpha = 0.0;
  for (const double alpha : {1.5, 2.0, 3.0, 4.5, 6.0}) {
    AlmostRouteOptions options;
    options.epsilon = 0.3;
    options.alpha = alpha;
    options.max_iterations = 500000;
    const AlmostRouteResult result = almost_route(g, approx, b, options);
    std::string slope = "-";
    if (prev_iters > 0.0) {
      slope = fmt(std::log(static_cast<double>(result.iterations) /
                           prev_iters) /
                      std::log(alpha / prev_alpha),
                  2);
    }
    print_row({fmt(alpha, 1), fmt_int(result.iterations),
               result.converged ? "yes" : "NO", slope});
    prev_iters = static_cast<double>(result.iterations);
    prev_alpha = alpha;
  }
  print_header("E7c", "accelerated (footnote 3) vs plain gradient descent");
  print_row({"eps", "plain_iters", "accel_iters", "speedup"});
  for (const double eps : {0.45, 0.3, 0.2}) {
    AlmostRouteOptions plain;
    plain.epsilon = eps;
    plain.alpha = 2.0;
    plain.max_iterations = 500000;
    AlmostRouteOptions accel = plain;
    accel.accelerate = true;
    const AlmostRouteResult a = almost_route(g, approx, b, plain);
    const AlmostRouteResult c = almost_route(g, approx, b, accel);
    print_row({fmt(eps, 2), fmt_int(a.iterations), fmt_int(c.iterations),
               fmt(static_cast<double>(a.iterations) /
                       static_cast<double>(c.iterations),
                   2)});
  }

  std::printf("\nexpected shape: iterations grow with 1/eps (exponent <= 3) "
              "and with alpha (exponent <= 2), per O(alpha^2 eps^-3 log n); "
              "momentum (footnote 3 stand-in) reduces the count.\n");
  return 0;
}
