// E8 (Lemma 5.1): cost of simulating one cluster-graph round on the real
// message-passing simulator. The lemma's bound is O(D + sqrt(n)) per
// round (intra-cluster trees + pipelined handling of large clusters);
// measured rounds must track 2*depth + O(1), and the pipelined-broadcast
// column validates the D + k pipelining fact the lemma rests on.
#include "bench_util.h"
#include "cluster/cluster_graph.h"
#include "congest/programs.h"
#include "graph/algorithms.h"

namespace {

std::vector<int> stripes(int width, int height, int stripe) {
  std::vector<int> cluster(static_cast<std::size_t>(width) * height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      cluster[static_cast<std::size_t>(y * width + x)] = x / stripe;
    }
  }
  return cluster;
}

}  // namespace

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E8a", "cluster-round cost vs cluster depth (grid stripes)");
  print_row({"grid", "clusters", "depth", "rounds", "2*depth+6"});
  Rng rng(8000);
  for (const int side : {8, 12, 16, 20}) {
    const Graph g = make_grid(side, side, {1, 3}, rng);
    const int stripe = side / 4;
    const ClusterGraph cg = make_cluster_graph(g, stripes(side, side, stripe));
    const ClusterExchangeResult result = simulate_cluster_exchange(
        cg, std::vector<double>(cg.count, 1.0));
    print_row({std::to_string(side) + "x" + std::to_string(side),
               fmt_int(cg.count), fmt_int(cg.max_tree_depth()),
               fmt_int(result.stats.rounds),
               fmt_int(2 * cg.max_tree_depth() + 6)});
  }

  print_header("E8b", "pipelined broadcast: rounds vs D + k");
  print_row({"path_n", "k", "rounds", "D+k+4"});
  for (const int n : {40, 80}) {
    for (const int k : {10, 40}) {
      const Graph g = make_path(n, {1, 1}, rng);
      const congest::DistributedBfsResult bfs =
          congest::run_distributed_bfs(g, 0);
      const auto children = congest::children_ports_from_bfs(g, bfs);
      congest::Network net(g);
      std::vector<congest::PipelinedBroadcastProgram> programs;
      std::vector<std::int64_t> tokens(static_cast<std::size_t>(k), 7);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        congest::PipelinedBroadcastProgram::Config config;
        config.is_root = (v == 0);
        config.parent_port = bfs.parent_port[static_cast<std::size_t>(v)];
        config.children_ports = children[static_cast<std::size_t>(v)];
        if (config.is_root) config.tokens = tokens;
        programs.emplace_back(std::move(config));
      }
      const congest::RunStats stats = net.run(programs);
      print_row({fmt_int(n), fmt_int(k), fmt_int(stats.rounds),
                 fmt_int((n - 1) + k + 4)});
    }
  }
  std::printf("\nexpected shape: measured rounds track the bounds with "
              "small additive constants (never multiplicative blowup).\n");
  return 0;
}
