// E5 (Theorem 8.10): properties of sampled virtual trees. For s-t
// demands the optimal congestion is exact (1/maxflow), so we can measure
// both sides of the theorem: the tree never under-represents a cut
// (lower_violation ~ 0 after the exact-load recapacitation), and the
// expected over-estimate alpha stays small as n grows (n^o(1)).
#include "baselines/dinic.h"
#include "bench_util.h"
#include "capprox/approximator.h"
#include "capprox/hierarchy.h"
#include "graph/flow.h"
#include "util/stats.h"

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E5", "virtual tree cut fidelity vs n");
  print_row({"family", "n", "levels", "alpha_1tree", "lower_viol", "rounds"});
  for (const std::string family : {"gnp", "grid"}) {
    for (const NodeId n : {49, 100, 196, 324}) {
      Rng rng(5000 + n);
      const Graph g = make_family(family, n, rng);
      Summary alpha;
      Summary viol;
      Summary levels;
      Summary rounds;
      for (int trial = 0; trial < 4; ++trial) {
        const VirtualTreeSample sample =
            sample_virtual_tree(g, HierarchyOptions{}, rng);
        levels.add(static_cast<double>(sample.levels));
        rounds.add(sample.rounds);
        const CongestionApproximator one({sample.tree});
        const AlphaEstimate est = estimate_alpha(g, one, 10, rng);
        alpha.add(est.alpha);
        viol.add(est.lower_violation);
      }
      print_row({family, fmt_int(g.num_nodes()), fmt(levels.mean(), 1),
                 fmt(alpha.mean(), 2), fmt(viol.max(), 6),
                 fmt(rounds.mean(), 0)});
    }
  }
  std::printf("\nexpected shape: lower_viol == 0 (cuts never "
              "under-capacitated); single-tree alpha grows slowly "
              "(n^o(1)); O(log n) samples then tighten it (E6).\n");
  return 0;
}
