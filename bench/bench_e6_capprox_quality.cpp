// E6 (Lemma 3.3): quality of the congestion approximator as a function
// of the number of sampled virtual trees. The lemma says O(log n)
// samples give a 2*alpha^2-approximator w.h.p.; the table shows the
// measured empirical alpha (max over s-t demands of opt/||Rb||)
// dropping as samples are added, with the one-sided property (R never
// overestimates congestion) holding throughout.
#include "baselines/dinic.h"
#include "bench_util.h"
#include "capprox/approximator.h"
#include "capprox/hierarchy.h"
#include "util/stats.h"

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E6", "approximator alpha vs number of sampled trees");
  print_row({"family", "k_trees", "alpha_mean", "alpha_max", "lower_viol"});
  for (const std::string family : {"gnp", "grid"}) {
    for (const int k : {1, 2, 4, 8, 16}) {
      Summary alpha;
      double worst_viol = 0.0;
      for (int trial = 0; trial < 3; ++trial) {
        Rng rng(6000 + k * 17 + trial);
        const Graph g = make_family(family, 80, rng);
        const std::vector<VirtualTreeSample> samples =
            sample_virtual_trees(g, k, HierarchyOptions{}, rng);
        const CongestionApproximator approx =
            CongestionApproximator::from_samples(samples);
        const AlphaEstimate est = estimate_alpha(g, approx, 20, rng);
        alpha.add(est.alpha);
        worst_viol = std::max(worst_viol, est.lower_violation);
      }
      print_row({family, fmt_int(k), fmt(alpha.mean(), 2),
                 fmt(alpha.max(), 2), fmt(worst_viol, 6)});
    }
  }
  std::printf("\nexpected shape: alpha decreases in k and flattens around "
              "k = O(log n); lower_viol stays 0.\n");
  return 0;
}
