// E12 (Lemma 9.1): routing residual demands through the maximum-weight
// spanning tree. The lemma is about cost (Õ(D + sqrt n) rounds); the
// quality fact Algorithm 1 relies on is that the *small* leftover
// residual routed this way adds negligible congestion. We measure the
// extra congestion as a function of the residual magnitude.
#include "baselines/dinic.h"
#include "baselines/tree_routing.h"
#include "bench_util.h"
#include "graph/flow.h"
#include "util/stats.h"

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E12", "max-weight spanning tree residual routing");
  print_row({"family", "residual", "tree_congestion", "vs_opt_factor"});
  for (const std::string family : {"gnp", "grid"}) {
    for (const double magnitude : {1.0, 0.1, 0.01}) {
      Summary congestion;
      Summary factor;
      for (int trial = 0; trial < 5; ++trial) {
        Rng rng(12000 + trial * 7 + static_cast<int>(magnitude * 100));
        const Graph g = make_family(family, 80, rng);
        const RootedTree mwst = max_weight_spanning_tree(g, 0);
        const NodeId s = 0;
        const NodeId t = g.num_nodes() - 1;
        const std::vector<double> b =
            st_demand(g.num_nodes(), s, t, magnitude);
        const std::vector<double> flow =
            route_demand_on_spanning_tree(g, mwst, b);
        const double cong = max_congestion(g, flow);
        congestion.add(cong);
        const double opt = magnitude / dinic_max_flow_value(g, s, t);
        factor.add(cong / opt);
      }
      print_row({family, fmt(magnitude, 2), fmt(congestion.mean(), 4),
                 fmt(factor.mean(), 2)});
    }
  }
  std::printf("\nexpected shape: congestion scales linearly with the "
              "residual (constant vs_opt factor), so once Algorithm 1 has "
              "shrunk the residual geometrically, tree routing is free.\n");
  return 0;
}
