// E2 (Theorem 1.1): value of the returned flow vs the exact optimum,
// swept over eps and graph families. The theorem promises
// value >= (1 - eps) * OPT (up to the small-scale constants discussed in
// EXPERIMENTS.md); the flow must always be feasible and conserved.
#include "baselines/dinic.h"
#include "bench_util.h"
#include "graph/flow.h"
#include "maxflow/sherman.h"
#include "util/stats.h"

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E2", "approximation quality: value / OPT");
  print_row({"family", "eps", "mean", "min", "max", "feasible"});
  for (const std::string family : {"gnp", "grid", "regular", "chords"}) {
    for (const double eps : {0.5, 0.25, 0.15}) {
      Summary ratios;
      bool all_feasible = true;
      for (int trial = 0; trial < 4; ++trial) {
        Rng rng(2000 + trial * 131 + static_cast<int>(eps * 100));
        const Graph g = make_family(family, 48, rng);
        const NodeId s = 0;
        const NodeId t = g.num_nodes() - 1;
        const double exact = dinic_max_flow_value(g, s, t);
        ShermanOptions options;
        options.epsilon = eps;
        options.almost_route.epsilon = eps < 0.5 ? eps : 0.5;
        const ShermanSolver solver(g, options, rng);
        const MaxFlowApproxResult flow = solver.max_flow(s, t);
        ratios.add(flow.value / exact);
        all_feasible = all_feasible && is_feasible(g, flow.flow, 1e-6) &&
                       max_conservation_violation(g, flow.flow, s, t) < 1e-6;
      }
      print_row({family, fmt(eps, 2), fmt(ratios.mean()), fmt(ratios.min()),
                 fmt(ratios.max()), all_feasible ? "yes" : "NO"});
    }
  }
  std::printf("\nexpected shape: mean ratio -> 1 as eps shrinks; never > 1; "
              "always feasible.\n");
  return 0;
}
