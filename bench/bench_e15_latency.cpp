// E15: open-loop latency percentiles and saturation throughput of
// dmf-serve.
//
// Boots a full in-process ServeApp (real sockets, real HTTP) over a
// FlowEngine and drives it with an OPEN-LOOP load generator: arrivals
// follow a precomputed Poisson schedule at each offered load and are
// never gated on completions, so queueing delay past saturation shows
// up in the tail instead of silently throttling the offered rate
// (closed-loop generators hide exactly the overload behaviour this
// bench exists to measure). Latency is measured from the SCHEDULED
// arrival time to response completion — a request the transport
// couldn't even start on time counts its backlog.
//
// The sweep doubles the offered load until goodput falls clearly below
// offered (past saturation) and reports per-level p50/p99/p999 plus:
//   * e15_saturation — max goodput across the sweep (throughput_qps,
//     gated against the committed baseline);
//   * e15_tail — p99/p50 at the best-sampled level that kept up with
//     its offered rate (machine-independent shape metric, gated
//     lower-is-better).
// A final phase applies a MutationBatch mid-load and drains the app
// while requests are still arriving, asserting ZERO admitted queries
// failed (exit 1 otherwise) — 429/503 sheds are expected, 5xx is not.
//
// Usage: bench_e15_latency [seconds_per_level] [workers] [grid_side]
//                          [trees]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "serve/histogram.h"
#include "serve/serve_app.h"

namespace {

using Clock = std::chrono::steady_clock;
using dmf::serve::LatencyHistogram;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Minimal blocking keep-alive HTTP client; reconnects after errors.
class HttpConn {
 public:
  explicit HttpConn(int port) : port_(port) {}
  ~HttpConn() { reset(); }

  // Returns the HTTP status, or -1 on a transport failure.
  int post(const std::string& path, const std::string& body) {
    std::string req = "POST " + path + " HTTP/1.1\r\n";
    req += "Host: 127.0.0.1\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    req += "\r\n";
    req += body;
    return roundtrip(req);
  }

 private:
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool ensure_connected() {
    if (fd_ >= 0) return true;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      reset();
      return false;
    }
    return true;
  }

  int roundtrip(const std::string& request) {
    if (!ensure_connected()) return -1;
    std::size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        reset();
        return -1;
      }
      sent += static_cast<std::size_t>(n);
    }
    // Read headers.
    std::string buf;
    std::size_t header_end = std::string::npos;
    char chunk[8192];
    while (header_end == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        reset();
        return -1;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      header_end = buf.find("\r\n\r\n");
      if (buf.size() > (1u << 20)) {
        reset();
        return -1;
      }
    }
    int status = -1;
    std::sscanf(buf.c_str(), "HTTP/1.1 %d", &status);
    std::size_t content_length = 0;
    {
      // Case-insensitive search is unnecessary: the server emits
      // exactly "Content-Length".
      const std::size_t cl = buf.find("Content-Length: ");
      if (cl == std::string::npos || cl > header_end) {
        reset();
        return -1;
      }
      content_length = std::strtoull(buf.c_str() + cl + 16, nullptr, 10);
    }
    const bool close_after = buf.find("Connection: close") < header_end;
    std::size_t have = buf.size() - (header_end + 4);
    while (have < content_length) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        reset();
        return -1;
      }
      have += static_cast<std::size_t>(n);
    }
    if (close_after) reset();
    return status;
  }

  int port_;
  int fd_ = -1;
};

struct LevelResult {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  // goodput: 200s per wall second
  int ok = 0;
  int shed = 0;      // 429
  int failed = 0;    // 5xx (incl. 503) — unexpected outside drain
  int transport = 0; // connect/read errors
  LatencyHistogram hist;
};

std::string query_body(std::mt19937_64& gen, int num_nodes) {
  std::uniform_int_distribution<int> node(0, num_nodes - 1);
  const int s = node(gen);
  int t = node(gen);
  while (t == s) t = node(gen);
  return "{\"kind\":\"max_flow\",\"s\":" + std::to_string(s) +
         ",\"t\":" + std::to_string(t) + ",\"epsilon\":0.25}";
}

LevelResult run_level(int port, double offered_qps, double seconds,
                      int workers, int num_nodes, std::uint64_t seed) {
  const int total = std::min(
      static_cast<int>(offered_qps * seconds), 20000);
  std::vector<double> arrivals(static_cast<std::size_t>(total));
  {
    std::mt19937_64 gen(seed);
    std::exponential_distribution<double> gap(offered_qps);
    double t = 0.0;
    for (double& a : arrivals) {
      t += gap(gen);
      a = t;
    }
  }
  LevelResult result;
  result.offered_qps = offered_qps;
  std::atomic<int> next{0};
  std::mutex mu;  // result counters + histogram
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      HttpConn conn(port);
      std::mt19937_64 gen(seed * 7919 + static_cast<std::uint64_t>(w));
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= total) break;
        const Clock::time_point at =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            arrivals[static_cast<std::size_t>(i)]));
        std::this_thread::sleep_until(at);
        const int status = conn.post("/v1/query", query_body(gen, num_nodes));
        const double latency =
            std::chrono::duration<double>(Clock::now() - at).count();
        std::lock_guard<std::mutex> lock(mu);
        if (status == 200) {
          ++result.ok;
          result.hist.record(latency);
        } else if (status == 429) {
          ++result.shed;
        } else if (status > 0) {
          ++result.failed;
        } else {
          ++result.transport;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double elapsed = seconds_since(start);
  result.achieved_qps =
      elapsed > 0.0 ? static_cast<double>(result.ok) / elapsed : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds_per_level = argc > 1 ? std::atof(argv[1]) : 1.5;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 16;
  // 8x8 = 64 nodes: at/below the engine's exact cutoff, so queries take
  // the O(10us) Dinic path. A latency harness for the FRONT DOOR wants
  // cheap, stable-cost queries — the serving stack is the system under
  // test, and solver cost is e13/e14's subject. (Pass a larger side to
  // sweep the sherman path instead; saturation drops to tens of qps.)
  const int grid_side = argc > 3 ? std::atoi(argv[3]) : 8;
  const int trees = argc > 4 ? std::atoi(argv[4]) : 4;
  const std::uint64_t seed = 0xe15;

  dmf::Rng rng(seed);
  dmf::Graph graph = dmf::make_grid(grid_side, grid_side, {1, 8}, rng);
  const int num_nodes = graph.num_nodes();
  const int num_edges = graph.num_edges();

  dmf::EngineOptions eopts;
  eopts.sherman.num_trees = trees;
  eopts.seed = seed;
  dmf::FlowEngine engine(std::move(graph), eopts);

  dmf::serve::ServeAppOptions sopts;
  sopts.http.http_port = 0;  // ephemeral
  // Deliberately small: past saturation the engine queue holds this
  // many admitted queries and everything beyond sheds with 429 — the
  // overload behaviour this bench exists to demonstrate. (The client
  // runs `workers` > this many concurrent requests.)
  sopts.max_in_flight = 8;
  dmf::serve::ServeApp app(engine, sopts);
  std::string error;
  if (!app.start(&error)) {
    std::fprintf(stderr, "e15: serve start failed: %s\n", error.c_str());
    return 1;
  }
  const int port = app.http_port();

  dmf::bench::print_header(
      "E15", "open-loop latency percentiles vs offered load (dmf-serve)");
  std::printf("grid %dx%d, %d trees, %d client workers, %.1fs per level\n\n",
              grid_side, grid_side, trees, workers, seconds_per_level);
  dmf::bench::print_row({"offered_qps", "goodput_qps", "p50_ms", "p99_ms",
                         "p999_ms", "shed_429", "failed"});

  // Warm up connections, allocator, and engine caches so the first
  // (lowest-load) level — the one the gated tail ratio comes from —
  // isn't polluted by one-time costs.
  {
    std::vector<std::thread> warm;
    for (int w = 0; w < workers; ++w) {
      warm.emplace_back([&, w] {
        HttpConn conn(port);
        std::mt19937_64 gen(0x3a3a + static_cast<std::uint64_t>(w));
        for (int i = 0; i < 25; ++i) {
          conn.post("/v1/query", query_body(gen, num_nodes));
        }
      });
    }
    for (std::thread& t : warm) t.join();
  }

  dmf::bench::JsonArtifact artifact("BENCH_e15.json");
  std::vector<LevelResult> levels;
  double offered = 250.0;
  for (int level = 0; level < 7; ++level) {
    LevelResult r = run_level(port, offered, seconds_per_level, workers,
                              num_nodes, seed + static_cast<unsigned>(level));
    levels.push_back(r);
    const double p50 = r.hist.quantile(0.50) * 1e3;
    const double p99 = r.hist.quantile(0.99) * 1e3;
    const double p999 = r.hist.quantile(0.999) * 1e3;
    dmf::bench::print_row(
        {dmf::bench::fmt(r.offered_qps, 0), dmf::bench::fmt(r.achieved_qps, 1),
         dmf::bench::fmt(p50, 3), dmf::bench::fmt(p99, 3),
         dmf::bench::fmt(p999, 3), dmf::bench::fmt_int(r.shed),
         dmf::bench::fmt_int(r.failed)});
    artifact.add({{"scenario",
                   "e15_open_loop_q" + std::to_string(static_cast<int>(
                                           r.offered_qps))},
                  {"offered_qps", r.offered_qps},
                  {"goodput_qps", r.achieved_qps},
                  {"p50_ms", p50},
                  {"p99_ms", p99},
                  {"p999_ms", p999},
                  {"shed_429", static_cast<long long>(r.shed)},
                  {"failed", static_cast<long long>(r.failed)}});
    if (r.achieved_qps < 0.6 * r.offered_qps) break;  // past saturation
    offered *= 2.0;
  }

  double saturation_qps = 0.0;
  for (const LevelResult& r : levels) {
    saturation_qps = std::max(saturation_qps, r.achieved_qps);
  }
  // Tail-shape sample: the best-sampled level that still kept up with
  // its offered rate. The lowest level has the fewest requests (its
  // p99 rests on a handful of samples and is dominated by scheduler
  // jitter); a pre-saturation level with 10-20x the samples gives the
  // same machine-independent shape metric with far less variance.
  const LevelResult* tail_pick = &levels.front();
  for (const LevelResult& lvl : levels) {
    if (lvl.achieved_qps >= 0.9 * lvl.offered_qps &&
        lvl.ok >= tail_pick->ok) {
      tail_pick = &lvl;
    }
  }
  const LevelResult& tail = *tail_pick;
  const double tail_p50 = tail.hist.quantile(0.50);
  const double tail_p99 = tail.hist.quantile(0.99);
  const double p99_over_p50 = tail_p50 > 0.0 ? tail_p99 / tail_p50 : 0.0;
  std::printf("\nsaturation goodput: %.1f qps; tail p99/p50 at %.0f qps: "
              "%.2f\n",
              saturation_qps, tail.offered_qps, p99_over_p50);
  artifact.add({{"scenario", "e15_saturation"},
                {"throughput_qps", saturation_qps},
                {"levels", static_cast<long long>(levels.size())}});
  artifact.add({{"scenario", "e15_tail"},
                {"offered_qps", tail.offered_qps},
                {"p99_over_p50", p99_over_p50},
                {"p50_ms", tail_p50 * 1e3},
                {"p99_ms", tail_p99 * 1e3}});

  // --- mutate mid-load, then drain with requests still arriving -------------
  // Contract under test: every ADMITTED query completes (2xx); drain
  // sheds new work with 503 and never turns an in-flight query into a
  // 5xx/timeout.
  std::atomic<bool> stop_load{false};
  std::atomic<int> drain_ok{0}, drain_shed{0}, drain_rejected{0},
      drain_failed{0}, drain_transport{0};
  std::vector<std::thread> load;
  const int drain_workers = std::max(4, workers / 4);
  for (int w = 0; w < drain_workers; ++w) {
    load.emplace_back([&, w] {
      HttpConn conn(port);
      std::mt19937_64 gen(0xd7a1 + static_cast<std::uint64_t>(w));
      while (!stop_load.load(std::memory_order_relaxed)) {
        const int status = conn.post("/v1/query", query_body(gen, num_nodes));
        if (status == 200) {
          ++drain_ok;
        } else if (status == 429) {
          ++drain_shed;
        } else if (status == 503) {
          ++drain_rejected;
        } else if (status > 0) {
          ++drain_failed;
        } else {
          ++drain_transport;
          break;  // server is gone; drain finished
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  {
    HttpConn mutator(port);
    std::mt19937_64 gen(0xbeef);
    std::uniform_int_distribution<int> edge(0, num_edges - 1);
    std::string ops = "{\"ops\":[";
    for (int i = 0; i < 8; ++i) {
      if (i > 0) ops += ",";
      ops += "{\"op\":\"set_capacity\",\"edge\":" +
             std::to_string(edge(gen)) + ",\"capacity\":" +
             std::to_string(1 + i % 8) + "}";
    }
    ops += "],\"wait_seconds\":10}";
    const int status = mutator.post("/v1/mutate", ops);
    if (status != 200) {
      std::fprintf(stderr, "e15: mid-load mutate failed: HTTP %d\n", status);
      return 1;
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  app.drain();
  stop_load.store(true);
  for (std::thread& t : load) t.join();

  std::printf("drain phase: ok=%d shed=%d rejected_503=%d failed=%d\n",
              drain_ok.load(), drain_shed.load(), drain_rejected.load(),
              drain_failed.load());
  artifact.add({{"scenario", "e15_drain"},
                {"ok", static_cast<long long>(drain_ok.load())},
                {"rejected_503", static_cast<long long>(drain_rejected.load())},
                {"failed", static_cast<long long>(drain_failed.load())}});
  artifact.write();

  int bad_levels = 0;
  for (const LevelResult& r : levels) bad_levels += r.failed;
  if (drain_failed.load() != 0 || bad_levels != 0) {
    std::fprintf(stderr,
                 "e15: FAILED — %d in-flight queries failed across sweep, "
                 "%d during drain (expected zero)\n",
                 bad_levels, drain_failed.load());
    return 1;
  }
  return 0;
}
