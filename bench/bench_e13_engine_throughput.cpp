// E13: FlowEngine batched throughput vs. per-query solver construction.
//
// The engine's thesis: the congestion-approximator hierarchy dominates the
// cost of a query, so building it once and serving a batch against it must
// beat constructing a fresh ShermanSolver per query by a wide margin. This
// experiment times a 64-query s-t max-flow batch both ways on several
// graph families and reports queries/s plus the speedup (acceptance bar:
// >= 3x). Also shown: the worker-pool scaling at 1/2/4 threads on one
// prebuilt hierarchy (E13b), the async submit path vs. the run_batch shim
// (E13c), and the multi-terminal hierarchy cache on repeated terminal
// sets (E13d, acceptance bar: >= 3x at value ratio >= 0.99 vs. per-query
// hierarchies).
//
//   ./bench_e13_engine_throughput [n] [queries] [seed]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "graph/algorithms.h"
#include "graph/csr_graph.h"
#include "maxflow/sherman.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmf;
  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 220;
  const int num_queries = argc > 2 ? std::atoi(argv[2]) : 64;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1337;

  bench::JsonArtifact artifact("BENCH_e13.json");
  bench::print_header("E13", "engine batched throughput vs per-query builds");
  // value_ratio: mean engine/naive max-flow value — shows the engine's
  // throughput-tuned routing stays well inside the (1+eps) promise.
  bench::print_row({"family", "n", "queries", "batch_s", "naive_s", "qps",
                    "speedup", "value_ratio"});

  for (const std::string& family : {std::string("gnp"), std::string("torus"),
                                    std::string("chords")}) {
    Rng rng(seed);
    const Graph g = bench::make_family(family, n, rng);

    // Query workload: random distinct s-t pairs.
    std::vector<EngineQuery> queries;
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (int i = 0; i < num_queries; ++i) {
      const NodeId s = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
      NodeId t = s;
      while (t == s) {
        t = static_cast<NodeId>(
            rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
      }
      queries.push_back(MaxFlowQuery{s, t});
      pairs.emplace_back(s, t);
    }

    EngineOptions options;
    options.threads = 1;  // isolate the amortization effect from threading
    options.sherman.num_trees = 6;
    options.seed = seed;

    // --- Engine: one hierarchy build + batch. ---
    const auto engine_start = Clock::now();
    FlowEngine engine(g, options);
    const std::vector<QueryOutcome> outcomes = engine.run_batch(queries);
    const double engine_seconds = seconds_since(engine_start);
    int failures = 0;
    for (const QueryOutcome& o : outcomes) failures += o.ok ? 0 : 1;

    // --- Naive: a fresh ShermanSolver (fresh hierarchy) per query, at
    // the same accuracy contract (the engine derives almost_route.epsilon
    // from epsilon the same way; its residual-tolerance tuning is part of
    // what is being measured). ---
    ShermanOptions sherman = options.sherman;
    sherman.almost_route.epsilon = std::min(0.5, sherman.epsilon);
    const auto naive_start = Clock::now();
    std::vector<double> naive_values;
    for (const auto& [s, t] : pairs) {
      Rng solver_rng(seed);
      const ShermanSolver solver(g, sherman, solver_rng);
      naive_values.push_back(solver.max_flow(s, t).value);
    }
    const double naive_seconds = seconds_since(naive_start);

    double ratio_sum = 0.0;
    int ratio_count = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].ok && outcomes[i].max_flow && naive_values[i] > 0.0) {
        ratio_sum += outcomes[i].max_flow->value / naive_values[i];
        ++ratio_count;
      }
    }

    const double qps = static_cast<double>(num_queries) / engine_seconds;
    const double value_ratio =
        ratio_count > 0 ? ratio_sum / ratio_count : 0.0;
    bench::print_row(
        {family, bench::fmt_int(n), bench::fmt_int(num_queries),
         bench::fmt(engine_seconds), bench::fmt(naive_seconds),
         bench::fmt(qps, 1), bench::fmt(naive_seconds / engine_seconds, 1),
         bench::fmt(value_ratio)});
    artifact.add({{"scenario", std::string("e13_batch_vs_naive_") + family},
                  {"n", static_cast<int>(n)},
                  {"queries", num_queries},
                  {"throughput_qps", qps},
                  {"speedup", naive_seconds / engine_seconds},
                  {"value_ratio", value_ratio}});
    if (failures > 0) {
      std::printf("  WARNING: %d queries failed\n", failures);
    }
  }

  // --- Worker-pool scaling on one prebuilt hierarchy (gnp family). ---
  // The sweep runs 1..hardware_concurrency (powers of two, plus the
  // endpoints), and `efficiency` = qps_T / (T * qps_1) shows how much of
  // the ideal linear scaling the pool delivers at each width.
  bench::print_header("E13b", "worker-pool scaling on a prebuilt hierarchy");
  bench::print_row({"threads", "batch_s", "qps", "efficiency"});
  Rng rng(seed);
  const Graph g = bench::make_family("gnp", n, rng);
  std::vector<EngineQuery> queries;
  for (int i = 0; i < num_queries; ++i) {
    const NodeId s = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
    const NodeId t = (s + 1 + static_cast<NodeId>(rng.next_below(
                                  static_cast<std::uint64_t>(
                                      g.num_nodes() - 1)))) %
                     g.num_nodes();
    queries.push_back(MaxFlowQuery{s, t});
  }
  std::vector<int> thread_sweep = {1, 2, 4};
  const int hw = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  for (int t = 8; t <= hw; t *= 2) thread_sweep.push_back(t);
  if (hw > 4 && thread_sweep.back() != hw) thread_sweep.push_back(hw);
  double qps_t1 = 0.0;
  for (const int threads : thread_sweep) {
    EngineOptions options;
    options.threads = threads;
    options.sherman.num_trees = 6;
    options.seed = seed;
    FlowEngine engine(g, options);  // build excluded from the timing below
    const auto start = Clock::now();
    (void)engine.run_batch(queries);
    const double batch_seconds = seconds_since(start);
    const double qps = static_cast<double>(num_queries) / batch_seconds;
    if (threads == 1) qps_t1 = qps;
    const double efficiency =
        qps_t1 > 0.0 ? qps / (static_cast<double>(threads) * qps_t1) : 0.0;
    bench::print_row({bench::fmt_int(threads), bench::fmt(batch_seconds),
                      bench::fmt(qps, 1), bench::fmt(efficiency)});
    artifact.add(
        {{"scenario",
          std::string("e13b_pool_scaling_t") + std::to_string(threads)},
         {"n", static_cast<int>(n)},
         {"queries", num_queries},
         {"throughput_qps", qps},
         {"efficiency", efficiency},
         {"value_ratio", 1.0}});
  }

  // --- E13c: async submit vs the run_batch shim on one engine. ---
  // Same queries, same pool; submit returns tickets immediately and
  // completion is collected out of band, so the comparison isolates the
  // shim overhead (expected: parity) while demonstrating the session API.
  bench::print_header("E13c", "async submit vs run_batch shim");
  bench::print_row({"api", "seconds", "qps", "identical"});
  {
    EngineOptions options;
    options.threads = 2;
    options.sherman.num_trees = 6;
    options.seed = seed;
    FlowEngine engine(g, options);
    const auto batch_start = Clock::now();
    const std::vector<QueryOutcome> batched = engine.run_batch(queries);
    const double batch_seconds = seconds_since(batch_start);

    const auto async_start = Clock::now();
    std::vector<MaxFlowTicket> tickets;
    tickets.reserve(queries.size());
    for (const EngineQuery& q : queries) {
      tickets.push_back(engine.submit(std::get<MaxFlowQuery>(q)));
    }
    std::vector<Result<MaxFlowApproxResult>> results;
    results.reserve(tickets.size());
    for (MaxFlowTicket& t : tickets) results.push_back(t.get());
    const double async_seconds = seconds_since(async_start);

    bool identical = batched.size() == results.size();
    for (std::size_t i = 0; identical && i < results.size(); ++i) {
      identical = batched[i].ok && results[i].ok() &&
                  batched[i].max_flow->value == results[i].value().value;
    }
    bench::print_row({"run_batch", bench::fmt(batch_seconds),
                      bench::fmt(static_cast<double>(num_queries) /
                                     batch_seconds,
                                 1),
                      "-"});
    bench::print_row({"submit", bench::fmt(async_seconds),
                      bench::fmt(static_cast<double>(num_queries) /
                                     async_seconds,
                                 1),
                      identical ? "yes" : "NO"});
    artifact.add(
        {{"scenario", "e13c_submit_vs_run_batch"},
         {"n", static_cast<int>(n)},
         {"queries", num_queries},
         {"throughput_qps", static_cast<double>(num_queries) / async_seconds},
         {"speedup", batch_seconds / async_seconds},
         {"value_ratio", identical ? 1.0 : 0.0}});
  }

  // --- E13d: multi-terminal hierarchy cache on repeated terminal sets. ---
  // The workload: `repeats` queries over each of `distinct` terminal
  // sets — the pattern the HierarchyCache targets. The baseline is the
  // pre-v2 per-query path (approx_max_flow_multi: fresh super-terminal
  // hierarchy + library-default routing per query), which is exactly
  // what the engine used to do for every multi-terminal query. Repeats
  // of one query are deterministic, so the baseline times each distinct
  // set once and scales by `repeats` instead of grinding through
  // identical runs. Bars: >= 3x throughput, mean value ratio >= 0.99.
  bench::print_header("E13d", "multi-terminal hierarchy cache (repeated sets)");
  bench::print_row({"mode", "seconds", "qps", "builds", "cache_hits",
                    "value_ratio", "speedup"});
  if (n < 32) {
    // The fixed terminal sets below (nodes 0..8 vs n-9..n-1) need room
    // to stay disjoint and above the exact-dispatch cutoff.
    std::printf("  (skipped: needs n >= 32, got %d)\n", n);
    artifact.write();
    return 0;
  }
  {
    const int distinct = 3;
    const int repeats = std::max(3, num_queries / 8);
    std::vector<MultiTerminalQuery> sets;
    for (int d = 0; d < distinct; ++d) {
      MultiTerminalQuery q;
      q.sources = {static_cast<NodeId>(3 * d),
                   static_cast<NodeId>(3 * d + 1),
                   static_cast<NodeId>(3 * d + 2)};
      q.sinks = {static_cast<NodeId>(g.num_nodes() - 1 - 3 * d),
                 static_cast<NodeId>(g.num_nodes() - 2 - 3 * d),
                 static_cast<NodeId>(g.num_nodes() - 3 - 3 * d)};
      sets.push_back(std::move(q));
    }

    // Engine: submit the full repeated workload; one hierarchy build per
    // distinct set, every repeat is a cache hit. The engine honors its
    // configured quality (6 trees, like the rest of this bench) for the
    // super-terminal hierarchies too — the old path ignored engine
    // options and built a default-count hierarchy per query, which is
    // part of what this scenario measures; the value_ratio column
    // validates that quality held.
    EngineOptions options;
    options.threads = 1;
    options.sherman.num_trees = 6;
    options.seed = seed;
    FlowEngine engine(g, options);
    const auto engine_start = Clock::now();
    std::vector<MultiTerminalTicket> tickets;
    for (int r = 0; r < repeats; ++r) {
      for (const MultiTerminalQuery& q : sets) {
        tickets.push_back(engine.submit(q));
      }
    }
    std::vector<double> engine_values;
    for (MultiTerminalTicket& t : tickets) {
      Result<MultiTerminalMaxFlowResult> result = t.get();
      engine_values.push_back(result.ok() ? result.value().value : -1.0);
    }
    const double engine_seconds = seconds_since(engine_start);
    const EngineStats stats = engine.stats();
    const auto total = static_cast<double>(tickets.size());

    // Baseline: the pre-v2 per-query path, one timed run per distinct
    // set, scaled by repeats (identical queries repeat identical work).
    double baseline_seconds = 0.0;
    std::vector<double> baseline_values;
    for (const MultiTerminalQuery& q : sets) {
      Rng query_rng(seed);
      const auto start = Clock::now();
      const MultiTerminalMaxFlowResult result = approx_max_flow_multi(
          g, q.sources, q.sinks, ShermanOptions{}.epsilon, query_rng);
      baseline_seconds += seconds_since(start) * repeats;
      baseline_values.push_back(result.value);
    }

    double ratio_sum = 0.0;
    int ratio_count = 0;
    for (std::size_t i = 0; i < engine_values.size(); ++i) {
      const double base = baseline_values[i % sets.size()];
      if (engine_values[i] > 0.0 && base > 0.0) {
        ratio_sum += engine_values[i] / base;
        ++ratio_count;
      }
    }
    bench::print_row(
        {"engine+cache", bench::fmt(engine_seconds),
         bench::fmt(total / engine_seconds, 1),
         bench::fmt_int(static_cast<int>(stats.hierarchy_cache_misses)),
         bench::fmt_int(static_cast<int>(stats.hierarchy_cache_hits)),
         bench::fmt(ratio_count > 0 ? ratio_sum / ratio_count : 0.0),
         bench::fmt(baseline_seconds / engine_seconds, 1)});
    bench::print_row({"per-query", bench::fmt(baseline_seconds),
                      bench::fmt(total / baseline_seconds, 1),
                      bench::fmt_int(static_cast<int>(total)), "0", "1.000",
                      "-"});
    artifact.add({{"scenario", "e13d_multi_terminal_cache"},
                  {"n", static_cast<int>(n)},
                  {"queries", static_cast<int>(total)},
                  {"throughput_qps", total / engine_seconds},
                  {"speedup", baseline_seconds / engine_seconds},
                  {"value_ratio",
                   ratio_count > 0 ? ratio_sum / ratio_count : 0.0}});
  }
  // --- E13e: CSR snapshot view vs ragged adjacency traversal. ---
  // The microcosm of the CsrGraph change: full-graph BFS (the traversal
  // shape of every solver hot loop) over Graph's vector-of-vectors
  // adjacency vs the packed CSR rows of the same graph. Results are
  // identical (CSR preserves adjacency order); only the layout differs.
  bench::print_header("E13e", "CSR vs adjacency traversal (full-graph BFS)");
  bench::print_row({"layout", "seconds", "sweeps/s", "height"});
  {
    const NodeId big_n = std::max<NodeId>(n, 64) * 16;
    Rng gen(seed);
    const Graph big = bench::make_family("gnp", big_n, gen);
    const CsrGraph csr(big);
    const int sweeps = 200;
    volatile int sink = 0;

    const auto adj_start = Clock::now();
    for (int i = 0; i < sweeps; ++i) {
      sink += build_bfs_tree(big, i % big.num_nodes()).height;
    }
    const double adj_seconds = seconds_since(adj_start);

    const auto csr_start = Clock::now();
    int csr_height = 0;
    for (int i = 0; i < sweeps; ++i) {
      csr_height = build_bfs_tree(csr, i % big.num_nodes()).height;
      sink += csr_height;
    }
    const double csr_seconds = seconds_since(csr_start);
    (void)sink;

    bench::print_row({"adjacency", bench::fmt(adj_seconds),
                      bench::fmt(sweeps / adj_seconds, 1), "-"});
    bench::print_row({"csr", bench::fmt(csr_seconds),
                      bench::fmt(sweeps / csr_seconds, 1),
                      bench::fmt_int(csr_height)});
    std::printf("  csr speedup: %.2fx on n=%d\n", adj_seconds / csr_seconds,
                static_cast<int>(big_n));
    // Deliberately NOT throughput_qps: this single-shot millisecond
    // timing is too jittery for the 25% regression gate, which keys on
    // that field — keep it informational even after baseline refreshes.
    artifact.add({{"scenario", "e13e_csr_vs_adjacency_bfs"},
                  {"n", static_cast<int>(big_n)},
                  {"queries", sweeps},
                  {"sweeps_per_s", sweeps / csr_seconds},
                  {"speedup", adj_seconds / csr_seconds},
                  {"value_ratio", 1.0}});
  }
  artifact.write();
  return 0;
}
