// E13: FlowEngine batched throughput vs. per-query solver construction.
//
// The engine's thesis: the congestion-approximator hierarchy dominates the
// cost of a query, so building it once and serving a batch against it must
// beat constructing a fresh ShermanSolver per query by a wide margin. This
// experiment times a 64-query s-t max-flow batch both ways on several
// graph families and reports queries/s plus the speedup (acceptance bar:
// >= 3x). Also shown: the worker-pool scaling at 1/2/4 threads on one
// prebuilt hierarchy.
//
//   ./bench_e13_engine_throughput [n] [queries] [seed]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "maxflow/sherman.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmf;
  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 220;
  const int num_queries = argc > 2 ? std::atoi(argv[2]) : 64;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1337;

  bench::print_header("E13", "engine batched throughput vs per-query builds");
  // value_ratio: mean engine/naive max-flow value — shows the engine's
  // throughput-tuned routing stays well inside the (1+eps) promise.
  bench::print_row({"family", "n", "queries", "batch_s", "naive_s", "qps",
                    "speedup", "value_ratio"});

  for (const std::string& family : {std::string("gnp"), std::string("torus"),
                                    std::string("chords")}) {
    Rng rng(seed);
    const Graph g = bench::make_family(family, n, rng);

    // Query workload: random distinct s-t pairs.
    std::vector<EngineQuery> queries;
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (int i = 0; i < num_queries; ++i) {
      const NodeId s = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
      NodeId t = s;
      while (t == s) {
        t = static_cast<NodeId>(
            rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
      }
      queries.push_back(MaxFlowQuery{s, t});
      pairs.emplace_back(s, t);
    }

    EngineOptions options;
    options.threads = 1;  // isolate the amortization effect from threading
    options.sherman.num_trees = 6;
    options.seed = seed;

    // --- Engine: one hierarchy build + batch. ---
    const auto engine_start = Clock::now();
    FlowEngine engine(g, options);
    const std::vector<QueryOutcome> outcomes = engine.run_batch(queries);
    const double engine_seconds = seconds_since(engine_start);
    int failures = 0;
    for (const QueryOutcome& o : outcomes) failures += o.ok ? 0 : 1;

    // --- Naive: a fresh ShermanSolver (fresh hierarchy) per query, at
    // the same accuracy contract (the engine derives almost_route.epsilon
    // from epsilon the same way; its residual-tolerance tuning is part of
    // what is being measured). ---
    ShermanOptions sherman = options.sherman;
    sherman.almost_route.epsilon = std::min(0.5, sherman.epsilon);
    const auto naive_start = Clock::now();
    std::vector<double> naive_values;
    for (const auto& [s, t] : pairs) {
      Rng solver_rng(seed);
      const ShermanSolver solver(g, sherman, solver_rng);
      naive_values.push_back(solver.max_flow(s, t).value);
    }
    const double naive_seconds = seconds_since(naive_start);

    double ratio_sum = 0.0;
    int ratio_count = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].ok && outcomes[i].max_flow && naive_values[i] > 0.0) {
        ratio_sum += outcomes[i].max_flow->value / naive_values[i];
        ++ratio_count;
      }
    }

    const double qps = static_cast<double>(num_queries) / engine_seconds;
    bench::print_row(
        {family, bench::fmt_int(n), bench::fmt_int(num_queries),
         bench::fmt(engine_seconds), bench::fmt(naive_seconds),
         bench::fmt(qps, 1), bench::fmt(naive_seconds / engine_seconds, 1),
         bench::fmt(ratio_count > 0 ? ratio_sum / ratio_count : 0.0)});
    if (failures > 0) {
      std::printf("  WARNING: %d queries failed\n", failures);
    }
  }

  // --- Worker-pool scaling on one prebuilt hierarchy (gnp family). ---
  bench::print_header("E13b", "worker-pool scaling on a prebuilt hierarchy");
  bench::print_row({"threads", "batch_s", "qps"});
  Rng rng(seed);
  const Graph g = bench::make_family("gnp", n, rng);
  std::vector<EngineQuery> queries;
  for (int i = 0; i < num_queries; ++i) {
    const NodeId s = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
    const NodeId t = (s + 1 + static_cast<NodeId>(rng.next_below(
                                  static_cast<std::uint64_t>(
                                      g.num_nodes() - 1)))) %
                     g.num_nodes();
    queries.push_back(MaxFlowQuery{s, t});
  }
  for (const int threads : {1, 2, 4}) {
    EngineOptions options;
    options.threads = threads;
    options.sherman.num_trees = 6;
    options.seed = seed;
    FlowEngine engine(g, options);  // build excluded from the timing below
    const auto start = Clock::now();
    (void)engine.run_batch(queries);
    const double batch_seconds = seconds_since(start);
    bench::print_row({bench::fmt_int(threads), bench::fmt(batch_seconds),
                      bench::fmt(static_cast<double>(num_queries) /
                                     batch_seconds,
                                 1)});
  }
  return 0;
}
