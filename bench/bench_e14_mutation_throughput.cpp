// E14: mutation throughput through a rolling capacity-update workload.
//
// The versioned mutation path's thesis, upgraded by the repair path: a
// capacity-only apply(MutationBatch) publishes a new snapshot and
// refreshes the hierarchy in the background by resampling ONLY the
// virtual trees whose structural capacity view changed (see
// HierarchyOptions::capacity_bucket_octaves) — the engine keeps serving
// meanwhile, and the refresh itself is a fraction of a full rebuild.
// Four scenarios:
//
//   e14a steady:   query throughput with no mutations, for scale.
//   e14b rolling:  ONE long-lived engine, apply() + background refresh —
//                  the query wave overlaps the refresh; stale_served
//                  counts queries answered from the pre-mutation
//                  snapshot meanwhile.
//   e14c repair:   pure capacity-update throughput (apply + wait until
//                  servable, no queries): the repair path vs a teardown
//                  baseline that pays one full hierarchy build per
//                  update. This is the ISSUE-6 ">= 5x" number.
//   e14d teardown: the pre-GraphStore way — fresh engine per mutation,
//                  then serve the wave; the comparator for e14b.
//
// The mutation workload is a small multiplicative capacity jitter
// (+/-0.8% on 8 edges per round): rolling reconfiguration in the small,
// the regime the repair path is designed for. Bucket-crossing is
// per-tree-dithered, so each jitter dirties only a ~|log2 ratio|/W
// fraction of the trees and the rest splice through bitwise.
//
// Acceptance: every rolling round sustains non-zero throughput (no
// full-stop), and after the dust settles a probe query on the final
// snapshot matches a fresh engine built directly on that graph bitwise
// — which, since every e14b refresh was a repair, is exactly the
// repaired-hierarchy == full-rebuild identity.
//
//   ./bench_e14_mutation_throughput [n] [wave_queries] [rounds] [seed]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "graph/graph_store.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The round's capacity jitter: +/-0.8% on 8 rotating edges, a pure
// function of (round, current graph) so every mode walks the identical
// graph trajectory. The ratio keeps each tree's dirty probability near
// 8 * log2(1.008) ~ 9%, the sparse-repair regime.
dmf::MutationBatch jitter_batch(const dmf::Graph& cur, int round) {
  dmf::MutationBatch batch;
  const auto m = static_cast<int>(cur.num_edges());
  for (int k = 0; k < 8; ++k) {
    const auto e = static_cast<dmf::EdgeId>((round * 13 + k * 5) % m);
    const double factor = k % 2 == 0 ? 1.008 : 1.0 / 1.008;
    batch.set_capacity(e, cur.capacity(e) * factor);
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmf;
  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 180;
  const int wave_queries = argc > 2 ? std::atoi(argv[2]) : 24;
  const int rounds = argc > 3 ? std::atoi(argv[3]) : 6;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1337;

  bench::JsonArtifact artifact("BENCH_e14.json");
  Rng rng(seed);
  const Graph g = bench::make_family("gnp", n, rng);

  // Fixed query mix reused by every wave (and both modes).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < wave_queries; ++i) {
    const NodeId s = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
    NodeId t = s;
    while (t == s) {
      t = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
    }
    pairs.emplace_back(s, t);
  }

  EngineOptions options;
  options.threads = 4;  // >= 2: workers keep serving while one rebuilds
  // 12 trees (near the 3 log2 n default at these sizes): enough that
  // per-tree resampling dominates the refresh and the fixed per-refresh
  // work (recapacitation, alpha, MWST) amortizes.
  options.sherman.num_trees = 12;
  options.seed = seed;

  // --- E14a: steady-state throughput (no mutations), for scale. ---
  bench::print_header("E14a", "steady state (no mutations)");
  bench::print_row({"queries", "seconds", "qps"});
  FlowEngine engine(g, options);
  double steady_qps = 0.0;
  {
    const auto start = Clock::now();
    std::vector<MaxFlowTicket> tickets;
    for (const auto& [s, t] : pairs) {
      tickets.push_back(engine.submit(MaxFlowQuery{s, t}));
    }
    int ok = 0;
    for (MaxFlowTicket& t : tickets) ok += t.get().ok() ? 1 : 0;
    const double secs = seconds_since(start);
    steady_qps = ok / secs;
    bench::print_row({bench::fmt_int(ok), bench::fmt(secs),
                      bench::fmt(steady_qps, 1)});
    artifact.add({{"scenario", "e14a_steady"},
                  {"n", static_cast<int>(n)},
                  {"queries", ok},
                  {"throughput_qps", steady_qps},
                  {"value_ratio", 1.0}});
  }

  // --- E14b: rolling updates on the live engine. ---
  bench::print_header("E14b",
                      "rolling capacity updates, background refresh");
  // first_s: mutation -> first answered query. The rolling engine keeps
  // serving from the previous snapshot, so this stays at one query's
  // latency; the teardown baseline below pays a full hierarchy build
  // first — that difference is the stall this experiment is about.
  bench::print_row({"round", "version", "plan", "dirty", "wave_s", "qps",
                    "first_s", "stale", "served_from"});
  const auto rolling_start = Clock::now();
  int rolling_ok = 0;
  double rolling_first_sum = 0.0;
  std::int64_t last_stale = 0;
  bool any_stale = false;
  bool every_round_served = true;
  for (int round = 0; round < rounds; ++round) {
    const auto round_start = Clock::now();
    const ApplyResult applied = engine.apply(
        jitter_batch(*engine.store()->snapshot().graph, round));
    const GraphVersion version = applied.version;
    std::vector<MaxFlowTicket> tickets;
    for (const auto& [s, t] : pairs) {
      tickets.push_back(engine.submit(MaxFlowQuery{s, t}));
    }
    int ok = 0;
    GraphVersion min_served = version;
    GraphVersion max_served = 0;
    double first_seconds = 0.0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      // Workers pop in submission order here, so ticket 0 resolves
      // first (up to scheduling noise): its get() bounds the
      // mutation-to-first-answer latency.
      const Result<MaxFlowApproxResult> r = tickets[i].get();
      if (i == 0) first_seconds = seconds_since(round_start);
      if (r.ok()) {
        ++ok;
        min_served = std::min(min_served, r.served_version);
        max_served = std::max(max_served, r.served_version);
      }
    }
    const double wave_seconds = seconds_since(round_start);
    rolling_ok += ok;
    rolling_first_sum += first_seconds;
    if (ok == 0) every_round_served = false;
    const EngineStats mid = engine.stats();
    const std::int64_t stale_this_wave =
        mid.queries_served_stale - last_stale;
    last_stale = mid.queries_served_stale;
    any_stale = any_stale || stale_this_wave > 0;
    bench::print_row(
        {bench::fmt_int(round), bench::fmt_int(static_cast<long long>(version)),
         applied.plan == RebuildPlan::kTreeRepair   ? "repair"
         : applied.plan == RebuildPlan::kNoOp       ? "noop"
                                                    : "rebuild",
         bench::fmt_int(applied.trees_dirty) + "/" +
             bench::fmt_int(applied.trees_total),
         bench::fmt(wave_seconds), bench::fmt(ok / wave_seconds, 1),
         bench::fmt(first_seconds), bench::fmt_int(stale_this_wave),
         "v" + std::to_string(min_served) + "..v" +
             std::to_string(max_served)});
  }
  const double rolling_seconds = seconds_since(rolling_start);
  const double rolling_qps = rolling_ok / rolling_seconds;
  const double rolling_first_mean = rolling_first_sum / rounds;

  // Let the last refresh land, then probe the final snapshot.
  const GraphVersion final_version = engine.latest_version();
  engine.wait_for_version(final_version);
  const EngineStats rolled = engine.stats();

  // --- E14c: repair vs rebuild, pure update throughput. ---
  // Each round is apply + wait-until-servable — no queries, so the
  // number is the capacity-update throughput of the refresh machinery
  // itself. The teardown side walks the identical graph trajectory but
  // pays a full synchronous hierarchy build per update.
  bench::print_header("E14c", "repair vs rebuild (updates/s, no queries)");
  const int update_rounds = std::max(12, 4 * rounds);
  FlowEngine repair_engine(g, options);
  const auto repair_start = Clock::now();
  for (int round = 0; round < update_rounds; ++round) {
    const ApplyResult applied = repair_engine.apply(
        jitter_batch(*repair_engine.store()->snapshot().graph, round));
    repair_engine.wait_for_version(applied.version);
  }
  const double repair_seconds = seconds_since(repair_start);
  const double repair_ups = update_rounds / repair_seconds;
  const EngineStats repair_stats = repair_engine.stats();

  GraphStore rebuild_store{Graph(g)};
  const auto rebuild_start = Clock::now();
  for (int round = 0; round < update_rounds; ++round) {
    const GraphSnapshot snap = rebuild_store.apply(
        jitter_batch(*rebuild_store.snapshot().graph, round));
    FlowEngine fresh(Graph(*snap.graph), options);  // full build, the stall
  }
  const double rebuild_seconds = seconds_since(rebuild_start);
  const double rebuild_ups = update_rounds / rebuild_seconds;
  const double repair_speedup =
      repair_seconds > 0.0 ? rebuild_seconds / repair_seconds : 0.0;

  bench::print_row({"mode", "updates", "seconds", "updates/s", "speedup"});
  bench::print_row({"repair", bench::fmt_int(update_rounds),
                    bench::fmt(repair_seconds), bench::fmt(repair_ups, 1),
                    bench::fmt(repair_speedup, 2)});
  bench::print_row({"rebuild", bench::fmt_int(update_rounds),
                    bench::fmt(rebuild_seconds), bench::fmt(rebuild_ups, 1),
                    "-"});
  std::printf("repairs %lld/%lld completed/started, trees %lld resampled / "
              "%lld spliced (%.1f%% dirty)\n",
              static_cast<long long>(repair_stats.rebuild.repairs_completed),
              static_cast<long long>(repair_stats.rebuild.repairs_started),
              static_cast<long long>(repair_stats.rebuild.trees_repaired),
              static_cast<long long>(repair_stats.rebuild.trees_reused),
              100.0 * repair_stats.rebuild.trees_repaired /
                  std::max<std::int64_t>(
                      1, repair_stats.rebuild.trees_repaired +
                             repair_stats.rebuild.trees_reused));

  // --- E14d: teardown baseline (fresh engine per mutation + wave). ---
  bench::print_header("E14d", "teardown baseline (fresh engine per update)");
  bench::print_row({"round", "build+wave_s", "qps", "first_s"});
  GraphStore baseline_store{Graph(g)};
  const auto teardown_start = Clock::now();
  int teardown_ok = 0;
  double teardown_first_sum = 0.0;
  for (int round = 0; round < rounds; ++round) {
    const auto round_start = Clock::now();
    const GraphSnapshot snap = baseline_store.apply(
        jitter_batch(*baseline_store.snapshot().graph, round));
    FlowEngine fresh(Graph(*snap.graph), options);  // the stall
    std::vector<MaxFlowTicket> tickets;
    for (const auto& [s, t] : pairs) {
      tickets.push_back(fresh.submit(MaxFlowQuery{s, t}));
    }
    int ok = 0;
    double first_seconds = 0.0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      ok += tickets[i].get().ok() ? 1 : 0;
      if (i == 0) first_seconds = seconds_since(round_start);
    }
    teardown_ok += ok;
    teardown_first_sum += first_seconds;
    const double round_seconds = seconds_since(round_start);
    bench::print_row({bench::fmt_int(round), bench::fmt(round_seconds),
                      bench::fmt(ok / round_seconds, 1),
                      bench::fmt(first_seconds)});
  }
  const double teardown_seconds = seconds_since(teardown_start);
  const double teardown_qps = teardown_ok / teardown_seconds;
  const double teardown_first_mean = teardown_first_sum / rounds;

  // --- Post-swap correctness: the rolled engine vs a fresh build. ---
  // Every e14b refresh took the repair path, so this bitwise probe is
  // the repaired-hierarchy == full-rebuild identity on a live chain.
  const QueryOutcome probe = engine.run(MaxFlowQuery{pairs[0].first,
                                                     pairs[0].second});
  FlowEngine reference(
      Graph(*engine.store()->snapshot(final_version).graph), options);
  const QueryOutcome want = reference.run(MaxFlowQuery{pairs[0].first,
                                                       pairs[0].second});
  const bool post_swap_match =
      probe.ok && want.ok && probe.served_version == final_version &&
      probe.max_flow->value == want.max_flow->value &&
      probe.max_flow->flow == want.max_flow->flow;
  const double post_swap_ratio =
      probe.ok && want.ok && want.max_flow->value > 0.0
          ? probe.max_flow->value / want.max_flow->value
          : 0.0;

  bench::print_header("E14", "summary");
  bench::print_row(
      {"mode", "queries", "seconds", "qps", "first_s", "speedup"});
  bench::print_row({"rolling", bench::fmt_int(rolling_ok),
                    bench::fmt(rolling_seconds), bench::fmt(rolling_qps, 1),
                    bench::fmt(rolling_first_mean),
                    bench::fmt(teardown_seconds / rolling_seconds, 2)});
  bench::print_row({"teardown", bench::fmt_int(teardown_ok),
                    bench::fmt(teardown_seconds), bench::fmt(teardown_qps, 1),
                    bench::fmt(teardown_first_mean), "-"});
  std::printf("capacity-update throughput: %.2fx the teardown baseline "
              "(repair path, e14c)\n", repair_speedup);
  std::printf("mutation-to-first-answer stall: %.2fx lower with "
              "background refresh\n",
              rolling_first_mean > 0.0
                  ? teardown_first_mean / rolling_first_mean
                  : 0.0);
  std::printf(
      "refreshes started %lld, completed %lld, failed %lld (repairs "
      "%lld); stale-served %lld of %lld; parked %lld\n",
      static_cast<long long>(rolled.rebuild.started),
      static_cast<long long>(rolled.rebuild.completed),
      static_cast<long long>(rolled.rebuild.failed),
      static_cast<long long>(rolled.rebuild.repairs_completed),
      static_cast<long long>(rolled.queries_served_stale),
      static_cast<long long>(rolled.queries_served),
      static_cast<long long>(rolled.queries_parked));
  std::printf("served during refreshes: %s; every round served: %s; "
              "post-swap matches fresh engine: %s\n",
              any_stale ? "yes" : "NO (refreshes landed between waves)",
              every_round_served ? "yes" : "NO",
              post_swap_match ? "yes (bitwise)" : "NO");

  artifact.add({{"scenario", "e14b_rolling_updates"},
                {"n", static_cast<int>(n)},
                {"queries", rolling_ok},
                {"rounds", rounds},
                {"throughput_qps", rolling_qps},
                {"speedup", teardown_seconds / rolling_seconds},
                {"first_result_s", rolling_first_mean},
                {"stale_served",
                 static_cast<long long>(rolled.queries_served_stale)},
                {"rebuilds_completed",
                 static_cast<long long>(rolled.rebuild.completed)},
                {"repairs_completed",
                 static_cast<long long>(rolled.rebuild.repairs_completed)},
                {"value_ratio", post_swap_ratio}});
  artifact.add({{"scenario", "e14c_repair_vs_rebuild"},
                {"n", static_cast<int>(n)},
                {"rounds", update_rounds},
                {"throughput_qps", repair_ups},
                {"rebuild_updates_per_s", rebuild_ups},
                {"speedup", repair_speedup},
                {"trees_repaired",
                 static_cast<long long>(repair_stats.rebuild.trees_repaired)},
                {"trees_reused",
                 static_cast<long long>(repair_stats.rebuild.trees_reused)},
                {"value_ratio", 1.0}});
  artifact.add({{"scenario", "e14d_teardown_baseline"},
                {"n", static_cast<int>(n)},
                {"queries", teardown_ok},
                {"rounds", rounds},
                {"throughput_qps", teardown_qps},
                {"first_result_s", teardown_first_mean},
                {"value_ratio", 1.0}});
  artifact.write();
  return every_round_served && post_swap_match ? 0 : 1;
}
