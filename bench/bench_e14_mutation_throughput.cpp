// E14: query throughput through a rolling capacity-update workload.
//
// The versioned mutation path's thesis: apply(MutationBatch) publishes a
// new snapshot and rebuilds the hierarchy in the background, so the
// engine keeps serving queries (from the previous snapshot) instead of
// stalling for every rebuild. This experiment runs `rounds` rounds of
// {mutate 8 edge capacities, immediately fire a wave of s-t queries} two
// ways:
//
//   rolling:  ONE long-lived engine, apply() + background refresh — the
//             wave overlaps the rebuild; stale_served counts the queries
//             answered from the pre-mutation snapshot meanwhile.
//   teardown: the pre-GraphStore way — build a fresh engine per
//             mutation (full synchronous hierarchy build), then serve
//             the wave.
//
// Acceptance: every rolling round sustains non-zero throughput (no
// full-stop), and after the dust settles a probe query on the final
// snapshot matches a fresh engine built directly on that graph bitwise.
//
//   ./bench_e14_mutation_throughput [n] [wave_queries] [rounds] [seed]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "graph/graph_store.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The round's capacity shuffle; deterministic so the rolling engine and
// the teardown baseline see identical graph trajectories.
dmf::MutationBatch round_batch(int round, dmf::EdgeId num_edges) {
  dmf::MutationBatch batch;
  for (int k = 0; k < 8; ++k) {
    const auto e = static_cast<dmf::EdgeId>((round * 13 + k * 5) %
                                            static_cast<int>(num_edges));
    batch.set_capacity(e, 1.0 + static_cast<double>((round + k) % 7));
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmf;
  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 180;
  const int wave_queries = argc > 2 ? std::atoi(argv[2]) : 24;
  const int rounds = argc > 3 ? std::atoi(argv[3]) : 6;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1337;

  bench::JsonArtifact artifact("BENCH_e14.json");
  Rng rng(seed);
  const Graph g = bench::make_family("gnp", n, rng);

  // Fixed query mix reused by every wave (and both modes).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < wave_queries; ++i) {
    const NodeId s = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
    NodeId t = s;
    while (t == s) {
      t = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
    }
    pairs.emplace_back(s, t);
  }

  EngineOptions options;
  options.threads = 4;  // >= 2: workers keep serving while one rebuilds
  options.sherman.num_trees = 6;
  options.seed = seed;

  // --- E14a: steady-state throughput (no mutations), for scale. ---
  bench::print_header("E14a", "steady state (no mutations)");
  bench::print_row({"queries", "seconds", "qps"});
  FlowEngine engine(g, options);
  double steady_qps = 0.0;
  {
    const auto start = Clock::now();
    std::vector<MaxFlowTicket> tickets;
    for (const auto& [s, t] : pairs) {
      tickets.push_back(engine.submit(MaxFlowQuery{s, t}));
    }
    int ok = 0;
    for (MaxFlowTicket& t : tickets) ok += t.get().ok() ? 1 : 0;
    const double secs = seconds_since(start);
    steady_qps = ok / secs;
    bench::print_row({bench::fmt_int(ok), bench::fmt(secs),
                      bench::fmt(steady_qps, 1)});
    artifact.add({{"scenario", "e14a_steady"},
                  {"n", static_cast<int>(n)},
                  {"queries", ok},
                  {"throughput_qps", steady_qps},
                  {"value_ratio", 1.0}});
  }

  // --- E14b: rolling updates on the live engine. ---
  bench::print_header("E14b",
                      "rolling capacity updates, background refresh");
  // first_s: mutation -> first answered query. The rolling engine keeps
  // serving from the previous snapshot, so this stays at one query's
  // latency; the teardown baseline below pays a full hierarchy build
  // first — that difference is the stall this experiment is about.
  bench::print_row({"round", "version", "wave_s", "qps", "first_s",
                    "stale_served", "served_from"});
  const auto rolling_start = Clock::now();
  int rolling_ok = 0;
  double rolling_first_sum = 0.0;
  std::int64_t last_stale = 0;
  bool any_stale = false;
  bool every_round_served = true;
  for (int round = 0; round < rounds; ++round) {
    const auto round_start = Clock::now();
    const GraphVersion version =
        engine.apply(round_batch(round, g.num_edges()));
    std::vector<MaxFlowTicket> tickets;
    for (const auto& [s, t] : pairs) {
      tickets.push_back(engine.submit(MaxFlowQuery{s, t}));
    }
    int ok = 0;
    GraphVersion min_served = version;
    GraphVersion max_served = 0;
    double first_seconds = 0.0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      // Workers pop in submission order here, so ticket 0 resolves
      // first (up to scheduling noise): its get() bounds the
      // mutation-to-first-answer latency.
      const Result<MaxFlowApproxResult> r = tickets[i].get();
      if (i == 0) first_seconds = seconds_since(round_start);
      if (r.ok()) {
        ++ok;
        min_served = std::min(min_served, r.served_version);
        max_served = std::max(max_served, r.served_version);
      }
    }
    const double wave_seconds = seconds_since(round_start);
    rolling_ok += ok;
    rolling_first_sum += first_seconds;
    if (ok == 0) every_round_served = false;
    const EngineStats mid = engine.stats();
    const std::int64_t stale_this_wave =
        mid.queries_served_stale - last_stale;
    last_stale = mid.queries_served_stale;
    any_stale = any_stale || stale_this_wave > 0;
    bench::print_row(
        {bench::fmt_int(round), bench::fmt_int(static_cast<long long>(version)),
         bench::fmt(wave_seconds), bench::fmt(ok / wave_seconds, 1),
         bench::fmt(first_seconds), bench::fmt_int(stale_this_wave),
         "v" + std::to_string(min_served) + "..v" +
             std::to_string(max_served)});
  }
  const double rolling_seconds = seconds_since(rolling_start);
  const double rolling_qps = rolling_ok / rolling_seconds;
  const double rolling_first_mean = rolling_first_sum / rounds;

  // Let the last rebuild land, then probe the final snapshot.
  const GraphVersion final_version = engine.latest_version();
  engine.wait_for_version(final_version);
  const EngineStats rolled = engine.stats();

  // --- E14c: teardown baseline (fresh engine per mutation). ---
  bench::print_header("E14c", "teardown baseline (fresh engine per update)");
  bench::print_row({"round", "build+wave_s", "qps", "first_s"});
  GraphStore baseline_store{Graph(g)};
  const auto teardown_start = Clock::now();
  int teardown_ok = 0;
  double teardown_first_sum = 0.0;
  for (int round = 0; round < rounds; ++round) {
    const auto round_start = Clock::now();
    const GraphSnapshot snap =
        baseline_store.apply(round_batch(round, g.num_edges()));
    FlowEngine fresh(Graph(*snap.graph), options);  // the stall
    std::vector<MaxFlowTicket> tickets;
    for (const auto& [s, t] : pairs) {
      tickets.push_back(fresh.submit(MaxFlowQuery{s, t}));
    }
    int ok = 0;
    double first_seconds = 0.0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      ok += tickets[i].get().ok() ? 1 : 0;
      if (i == 0) first_seconds = seconds_since(round_start);
    }
    teardown_ok += ok;
    teardown_first_sum += first_seconds;
    const double round_seconds = seconds_since(round_start);
    bench::print_row({bench::fmt_int(round), bench::fmt(round_seconds),
                      bench::fmt(ok / round_seconds, 1),
                      bench::fmt(first_seconds)});
  }
  const double teardown_seconds = seconds_since(teardown_start);
  const double teardown_qps = teardown_ok / teardown_seconds;
  const double teardown_first_mean = teardown_first_sum / rounds;

  // --- Post-swap correctness: the rolled engine vs a fresh build. ---
  const QueryOutcome probe = engine.run(MaxFlowQuery{pairs[0].first,
                                                     pairs[0].second});
  FlowEngine reference(
      Graph(*engine.store()->snapshot(final_version).graph), options);
  const QueryOutcome want = reference.run(MaxFlowQuery{pairs[0].first,
                                                       pairs[0].second});
  const bool post_swap_match =
      probe.ok && want.ok && probe.served_version == final_version &&
      probe.max_flow->value == want.max_flow->value &&
      probe.max_flow->flow == want.max_flow->flow;
  const double post_swap_ratio =
      probe.ok && want.ok && want.max_flow->value > 0.0
          ? probe.max_flow->value / want.max_flow->value
          : 0.0;

  bench::print_header("E14", "summary");
  bench::print_row(
      {"mode", "queries", "seconds", "qps", "first_s", "speedup"});
  bench::print_row({"rolling", bench::fmt_int(rolling_ok),
                    bench::fmt(rolling_seconds), bench::fmt(rolling_qps, 1),
                    bench::fmt(rolling_first_mean),
                    bench::fmt(teardown_seconds / rolling_seconds, 2)});
  bench::print_row({"teardown", bench::fmt_int(teardown_ok),
                    bench::fmt(teardown_seconds), bench::fmt(teardown_qps, 1),
                    bench::fmt(teardown_first_mean), "-"});
  std::printf("mutation-to-first-answer stall: %.2fx lower with "
              "background refresh\n",
              rolling_first_mean > 0.0
                  ? teardown_first_mean / rolling_first_mean
                  : 0.0);
  std::printf(
      "rebuilds started %lld, completed %lld, failed %lld; stale-served "
      "%lld of %lld; parked %lld\n",
      static_cast<long long>(rolled.rebuilds_started),
      static_cast<long long>(rolled.rebuilds_completed),
      static_cast<long long>(rolled.rebuilds_failed),
      static_cast<long long>(rolled.queries_served_stale),
      static_cast<long long>(rolled.queries_served),
      static_cast<long long>(rolled.queries_parked));
  std::printf("served during rebuilds: %s; every round served: %s; "
              "post-swap matches fresh engine: %s\n",
              any_stale ? "yes" : "NO (rebuilds landed between waves)",
              every_round_served ? "yes" : "NO",
              post_swap_match ? "yes (bitwise)" : "NO");

  artifact.add({{"scenario", "e14b_rolling_updates"},
                {"n", static_cast<int>(n)},
                {"queries", rolling_ok},
                {"rounds", rounds},
                {"throughput_qps", rolling_qps},
                {"speedup", teardown_seconds / rolling_seconds},
                {"first_result_s", rolling_first_mean},
                {"stale_served",
                 static_cast<long long>(rolled.queries_served_stale)},
                {"rebuilds_completed",
                 static_cast<long long>(rolled.rebuilds_completed)},
                {"value_ratio", post_swap_ratio}});
  artifact.add({{"scenario", "e14c_teardown_baseline"},
                {"n", static_cast<int>(n)},
                {"queries", teardown_ok},
                {"rounds", rounds},
                {"throughput_qps", teardown_qps},
                {"first_result_s", teardown_first_mean},
                {"value_ratio", 1.0}});
  artifact.write();
  return every_round_served && post_swap_match ? 0 : 1;
}
