// E3 (Theorem 3.1): average stretch of AKPW low-stretch spanning trees as
// n grows. The theorem promises expected stretch 2^O(sqrt(log n log log
// n)) — sub-polynomial. The table reports the measured average stretch
// and its ratio to log^2(n): the ratio must stay bounded (or shrink),
// while a stretch growing like n^c would blow it up.
#include <cmath>

#include "bench_util.h"
#include "lsst/akpw.h"
#include "util/stats.h"

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E3", "AKPW average stretch vs n");
  print_row({"family", "n", "stretch", "stretch/log2^2", "iters"});
  for (const std::string family : {"torus", "gnp", "regular"}) {
    for (const NodeId n : {64, 144, 256, 484}) {
      Summary stretches;
      Summary iters;
      for (int trial = 0; trial < 3; ++trial) {
        Rng rng(3000 + n + trial);
        const Graph g = make_family(family, n, rng);
        const Multigraph mg = Multigraph::from_graph(g);
        const LowStretchTreeResult tree =
            akpw_low_stretch_tree(mg, AkpwOptions{}, rng);
        stretches.add(average_stretch(mg, tree.tree_edges));
        iters.add(static_cast<double>(tree.iterations));
      }
      const double log2n = std::log2(static_cast<double>(n));
      print_row({family, fmt_int(n), fmt(stretches.mean(), 2),
                 fmt(stretches.mean() / (log2n * log2n), 3),
                 fmt(iters.mean(), 1)});
    }
  }
  std::printf("\nexpected shape: stretch grows sub-polynomially; the "
              "stretch/log^2 column stays O(1) at these scales.\n");
  return 0;
}
