// E16: sharded engine vs the single worker pool at a fixed workload.
//
// The workload is locality-friendly by construction: a small set of hot
// s-t pairs, each drawn from within one cluster of the snapshot's own
// ShardPlan (clusters are the unit of shard placement, so such a pair
// lands on one shard at EVERY shard count), and each pair repeated —
// the repeated-query shape a serving system actually sees. The sharded
// backend exploits both properties: the terminal router keeps each hot
// pair on one pinned pipeline, and that pipeline's generation-scoped
// result store replays repeats bitwise instead of recomputing. On a
// multi-core box the per-shard pipelines additionally scale the
// compute; on a single-core runner the replay store carries the win —
// either way the `speedup` column is the machine-independent ratio the
// regression gate guards (acceptance bar: >= 2x at 4 shards).
//
// E16b sweeps the cross-shard fraction of the same shape at a fixed
// shard count: as more pairs straddle shards, more queries take the
// aggregate-through-the-top-levels path and the routing split shifts —
// informational rows (field `qps`, not `throughput_qps`), not gated.
//
//   ./bench_e16_shard_scaling [n] [distinct_pairs] [seed]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "graph/shard_plan.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;
using dmf::NodeId;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct WorkloadResult {
  double seconds = 0.0;
  std::vector<double> values;  // one per submission, submission order
  dmf::EngineStats stats;
};

// Submit `repeats` interleaved rounds of the pair set and collect every
// result. Per-lane FIFO makes round r of a pair execute before round
// r+1, so repeats hit the replay store once the first round landed.
WorkloadResult run_pairs(dmf::FlowEngine& engine,
                         const std::vector<std::pair<NodeId, NodeId>>& pairs,
                         int repeats) {
  WorkloadResult out;
  std::vector<dmf::MaxFlowTicket> tickets;
  tickets.reserve(pairs.size() * static_cast<std::size_t>(repeats));
  const auto start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const auto& [s, t] : pairs) {
      tickets.push_back(engine.submit(dmf::MaxFlowQuery{s, t}));
    }
  }
  for (dmf::MaxFlowTicket& t : tickets) {
    const dmf::Result<dmf::MaxFlowApproxResult> r = t.get();
    out.values.push_back(r.ok() ? r.value().value : -1.0);
  }
  out.seconds = seconds_since(start);
  engine.wait_all();
  out.stats = engine.stats();
  return out;
}

// Mean current/reference value over all submissions: 1.0 exactly when
// the sharded backend reproduced the single pool bitwise.
double value_ratio(const std::vector<double>& current,
                   const std::vector<double>& reference) {
  double sum = 0.0;
  int count = 0;
  for (std::size_t i = 0; i < current.size() && i < reference.size(); ++i) {
    if (current[i] > 0.0 && reference[i] > 0.0) {
      sum += current[i] / reference[i];
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmf;
  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 96;
  const int distinct = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1337;
  const int repeats = 8;

  Rng rng(seed);
  const Graph g = bench::make_family("torus", n, rng);
  bench::JsonArtifact artifact("BENCH_e16.json");

  // Hot pairs from within ShardPlan clusters: same-shard at any K.
  const auto plan = ShardPlan::build(g);
  std::vector<std::vector<NodeId>> cluster_nodes(
      static_cast<std::size_t>(plan->num_clusters));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    cluster_nodes[static_cast<std::size_t>(
                      plan->cluster[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  std::vector<std::vector<std::pair<NodeId, NodeId>>> cluster_pairs;
  for (const auto& nodes : cluster_nodes) {
    if (nodes.size() < 2) continue;
    auto& pairs = cluster_pairs.emplace_back();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        pairs.emplace_back(nodes[i], nodes[j]);
      }
    }
  }
  std::vector<std::pair<NodeId, NodeId>> hot_pairs;
  for (std::size_t round = 0;
       static_cast<int>(hot_pairs.size()) < distinct; ++round) {
    bool any = false;
    for (const auto& pairs : cluster_pairs) {
      if (round < pairs.size() &&
          static_cast<int>(hot_pairs.size()) < distinct) {
        hot_pairs.push_back(pairs[round]);
        any = true;
      }
    }
    if (!any) break;  // graph too small for `distinct` in-cluster pairs
  }
  const int total = static_cast<int>(hot_pairs.size()) * repeats;

  bench::print_header("E16", "sharded pipelines vs single pool (hot pairs)");
  std::printf("  torus n=%d, %d clusters, %zu hot in-cluster pairs x %d "
              "repeats = %d queries\n",
              static_cast<int>(g.num_nodes()), plan->num_clusters,
              hot_pairs.size(), repeats, total);
  bench::print_row({"config", "seconds", "qps", "speedup", "local_frac",
                    "store_hits", "value_ratio"});

  EngineOptions base_options;
  base_options.sherman.num_trees = 6;
  base_options.seed = seed;

  // Reference: the classic mutexed pool at 4 threads, no replay store.
  WorkloadResult reference;
  double single_pool_qps = 0.0;
  {
    EngineOptions options = base_options;
    options.threads = 4;
    FlowEngine engine(g, options);  // build excluded from the timing
    reference = run_pairs(engine, hot_pairs, repeats);
    single_pool_qps = static_cast<double>(total) / reference.seconds;
    bench::print_row({"single_pool_t4", bench::fmt(reference.seconds),
                      bench::fmt(single_pool_qps, 1), "1.0", "-", "0",
                      "1.000"});
    artifact.add({{"scenario", "e16_single_pool"},
                  {"n", static_cast<int>(g.num_nodes())},
                  {"queries", total},
                  {"throughput_qps", single_pool_qps},
                  {"speedup", 1.0},
                  {"value_ratio", 1.0}});
  }

  for (const int shards : {1, 2, 4}) {
    EngineOptions options = base_options;
    options.shards = shards;
    FlowEngine engine(g, options);
    const WorkloadResult got = run_pairs(engine, hot_pairs, repeats);
    const double qps = static_cast<double>(total) / got.seconds;
    const double speedup = qps / single_pool_qps;
    const double ratio = value_ratio(got.values, reference.values);
    const auto routed = static_cast<double>(got.stats.queries_routed_local +
                                            got.stats.queries_routed_cross);
    const double local_frac =
        routed > 0.0
            ? static_cast<double>(got.stats.queries_routed_local) / routed
            : 0.0;
    bench::print_row(
        {"shards_k" + std::to_string(shards), bench::fmt(got.seconds),
         bench::fmt(qps, 1), bench::fmt(speedup, 2), bench::fmt(local_frac),
         bench::fmt_int(got.stats.result_store_hits), bench::fmt(ratio)});
    artifact.add({{"scenario", "e16_shard_k" + std::to_string(shards)},
                  {"n", static_cast<int>(g.num_nodes())},
                  {"queries", total},
                  {"throughput_qps", qps},
                  {"speedup", speedup},
                  {"value_ratio", ratio},
                  {"local_fraction", local_frac},
                  {"store_hit_rate",
                   total > 0 ? static_cast<double>(
                                   got.stats.result_store_hits) /
                                   static_cast<double>(total)
                             : 0.0},
                  {"shard_locality", got.stats.shard_locality}});
  }

  // --- E16b: cross-shard fraction sweep at a fixed shard count. ---
  // The pair set shifts from all-local to all-cross against the actual
  // K=4 assignment; informational (absolute qps, machine-dependent).
  bench::print_header("E16b", "cross-shard fraction sweep (4 shards)");
  bench::print_row({"target_cross", "seconds", "qps", "observed_cross",
                    "store_hit_rate"});
  {
    EngineOptions probe_options = base_options;
    probe_options.shards = 4;
    std::shared_ptr<const ShardAssignment> assignment;
    {
      FlowEngine probe(g, probe_options);
      assignment = probe.shard_assignment();
    }
    std::vector<std::pair<NodeId, NodeId>> cross_pairs;
    for (NodeId u = 0; u < g.num_nodes() &&
                       static_cast<int>(cross_pairs.size()) < distinct;
         ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1);
           v < g.num_nodes() &&
           static_cast<int>(cross_pairs.size()) < distinct;
           ++v) {
        if (assignment->shard_of(u) != assignment->shard_of(v)) {
          cross_pairs.emplace_back(u, v);
        }
      }
    }
    for (const double fraction : {0.0, 0.25, 0.5, 1.0}) {
      const int want_cross = std::min(
          static_cast<int>(cross_pairs.size()),
          static_cast<int>(fraction * static_cast<double>(hot_pairs.size()) +
                           0.5));
      std::vector<std::pair<NodeId, NodeId>> mixed;
      for (int i = 0; i < want_cross; ++i) {
        mixed.push_back(cross_pairs[static_cast<std::size_t>(i)]);
      }
      for (std::size_t i = mixed.size(); i < hot_pairs.size(); ++i) {
        mixed.push_back(hot_pairs[i]);
      }
      FlowEngine engine(g, probe_options);  // fresh store per point
      const WorkloadResult got = run_pairs(engine, mixed, repeats);
      const int point_total = static_cast<int>(mixed.size()) * repeats;
      const double qps = static_cast<double>(point_total) / got.seconds;
      const auto routed =
          static_cast<double>(got.stats.queries_routed_local +
                              got.stats.queries_routed_cross);
      const double observed_cross =
          routed > 0.0
              ? static_cast<double>(got.stats.queries_routed_cross) / routed
              : 0.0;
      const double hit_rate =
          point_total > 0
              ? static_cast<double>(got.stats.result_store_hits) /
                    static_cast<double>(point_total)
              : 0.0;
      bench::print_row({bench::fmt(fraction, 2), bench::fmt(got.seconds),
                        bench::fmt(qps, 1), bench::fmt(observed_cross),
                        bench::fmt(hit_rate)});
      artifact.add({{"scenario",
                     "e16b_cross_fraction_" + bench::fmt(fraction, 2)},
                    {"n", static_cast<int>(g.num_nodes())},
                    {"queries", point_total},
                    {"qps", qps},
                    {"cross_fraction", observed_cross},
                    {"store_hit_rate", hit_rate}});
    }
  }

  artifact.write();
  return 0;
}
