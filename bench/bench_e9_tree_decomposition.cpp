// E9 (Lemma 8.2): the random tree decomposition (cut each parent link
// with probability size/sqrt(n)) produces O(sqrt n) components of depth
// Õ(sqrt n), for every tree shape. Paths are the depth-adversarial case,
// stars the count-adversarial case.
#include <cmath>

#include "bench_util.h"
#include "graph/tree.h"
#include "util/stats.h"

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E9", "random tree decomposition (Lemma 8.2)");
  print_row({"shape", "n", "components", "c/sqrt(n)", "depth",
             "d/sqrt(n)"});
  Rng rng(9000);
  struct Shape {
    std::string name;
    Graph graph;
  };
  for (const NodeId n : {256, 1024}) {
    std::vector<Shape> shapes;
    shapes.push_back({"path", make_path(n, {1, 1}, rng)});
    shapes.push_back({"star", make_caterpillar(1, n - 1, {1, 1}, rng)});
    shapes.push_back({"caterpillar",
                      make_caterpillar(static_cast<int>(n) / 8, 7, {1, 1},
                                       rng)});
    shapes.push_back({"random", make_random_tree(n, {1, 1}, rng)});
    for (const Shape& shape : shapes) {
      const RootedTree tree = bfs_spanning_tree(shape.graph, 0);
      Summary comps;
      Summary depth;
      const double sqrt_n = std::sqrt(static_cast<double>(
          shape.graph.num_nodes()));
      for (int trial = 0; trial < 10; ++trial) {
        const TreeDecomposition dec =
            decompose_tree_random(tree, sqrt_n, rng);
        comps.add(static_cast<double>(dec.count));
        depth.add(static_cast<double>(dec.max_depth));
      }
      print_row({shape.name, fmt_int(shape.graph.num_nodes()),
                 fmt(comps.mean(), 1), fmt(comps.mean() / sqrt_n, 2),
                 fmt(depth.mean(), 1), fmt(depth.mean() / sqrt_n, 2)});
    }
  }
  std::printf("\nexpected shape: both normalized columns stay O(1) (up to "
              "log factors on the path's depth).\n");
  return 0;
}
