// E4 (Lemma 6.1): sparsifier size and cut preservation. The lemma
// promises O(N polylog N) edges with all cuts preserved up to 1+eps; we
// measure the edge reduction on dense graphs and the distribution of
// cut-capacity ratios over random bipartitions and degree cuts.
#include "bench_util.h"
#include "sparsify/sparsifier.h"
#include "util/stats.h"

int main() {
  using namespace dmf;
  using namespace dmf::bench;

  print_header("E4", "sparsifier size and cut quality");
  print_row({"graph", "m_before", "m_after", "ratio_min", "ratio_med",
             "ratio_max"});
  struct Case {
    std::string name;
    NodeId n;
  };
  for (const Case c : {Case{"complete", 60}, Case{"complete", 90},
                       Case{"dense_gnp", 120}}) {
    Rng rng(4000 + c.n);
    const Graph g = c.name == "complete"
                        ? make_complete(c.n, {1, 4}, rng)
                        : make_gnp_connected(c.n, 0.35, {1, 4}, rng);
    const Multigraph mg = Multigraph::from_graph(g);
    SparsifierOptions options;
    options.bundle_size = 5;
    options.target_degree = 14.0;
    const SparsifyResult result = sparsify(mg, options, rng);

    std::vector<double> ratios;
    const auto nn = static_cast<std::size_t>(mg.num_nodes());
    // Random bipartitions.
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<char> side(nn, 0);
      for (std::size_t v = 0; v < nn; ++v) {
        side[v] = rng.next_bool(0.5) ? 1 : 0;
      }
      const double before = cut_capacity(mg, side);
      if (before > 0.0) {
        ratios.push_back(cut_capacity(result.graph, side) / before);
      }
    }
    // Degree (single-node) cuts.
    for (NodeId v = 0; v < mg.num_nodes(); ++v) {
      std::vector<char> side(nn, 0);
      side[static_cast<std::size_t>(v)] = 1;
      ratios.push_back(cut_capacity(result.graph, side) /
                       cut_capacity(mg, side));
    }
    Summary s;
    for (const double r : ratios) s.add(r);
    print_row({c.name + "/" + std::to_string(c.n),
               fmt_int(static_cast<long long>(mg.num_edges())),
               fmt_int(static_cast<long long>(result.graph.num_edges())),
               fmt(s.min()), fmt(median(ratios)), fmt(s.max())});
  }
  std::printf("\nexpected shape: m_after ~ N polylog << m_before on dense "
              "inputs; ratios concentrated around 1.\n");
  return 0;
}
