// E1 (Theorem 1.1): round complexity of the full pipeline vs the
// distributed push-relabel strawman and the trivial O(m) collect-all
// baseline, as n grows.
//
// The paper's claim is asymptotic: (D + sqrt(n)) n^o(1) eps^-3 rounds
// against Omega(n^2) for push-relabel and O(m) for collecting the
// topology. At laptop scale the n^o(1) polylogs dominate the pipeline's
// absolute counts, so the honest presentation is the *growth rate*: the
// table reports seed-averaged rounds and the log-log slope across the
// whole size range. Push-relabel is measured on its classic bad case
// (a high-capacity path feeding a unit bottleneck: almost all injected
// excess must be drained back, forcing Theta(n^2) pulse work); the
// pipeline runs on the same instances.
#include <cmath>

#include "bench_util.h"
#include "congest/push_relabel_dist.h"
#include "graph/algorithms.h"
#include "maxflow/sherman.h"
#include "util/stats.h"

namespace {

using namespace dmf;

// Path with generous capacities and a unit bottleneck at the sink side.
Graph bottleneck_path(NodeId n, Rng& rng) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    const bool last = (v + 2 == n);
    g.add_edge(v, v + 1,
               last ? 1.0 : static_cast<double>(rng.next_int(8, 12)));
  }
  return g;
}

}  // namespace

int main() {
  using namespace dmf::bench;

  print_header("E1a", "push-relabel rounds on the bottleneck path");
  print_row({"n", "D", "m", "pushrel_mean", "pushrel/n^2"});
  std::vector<double> pr_sizes;
  std::vector<double> pr_rounds;
  for (const NodeId n : {16, 24, 32, 48, 64}) {
    Summary rounds;
    for (int trial = 0; trial < 3; ++trial) {
      Rng rng(100 + n + trial);
      const Graph g = bottleneck_path(n, rng);
      const congest::DistributedPushRelabelResult result =
          congest::run_distributed_push_relabel(g, 0, n - 1);
      rounds.add(static_cast<double>(result.stats.rounds));
    }
    pr_sizes.push_back(static_cast<double>(n));
    pr_rounds.push_back(rounds.mean());
    print_row({fmt_int(n), fmt_int(n - 1), fmt_int(n - 1),
               fmt(rounds.mean(), 0),
               fmt(rounds.mean() / (static_cast<double>(n) * n), 3)});
  }
  const double pr_slope =
      std::log(pr_rounds.back() / pr_rounds.front()) /
      std::log(pr_sizes.back() / pr_sizes.front());

  print_header("E1b", "pipeline rounds vs n (grid family, seed-averaged)");
  print_row({"n", "D", "m(trivial)", "pipeline_mean", "D+sqrt(n)"});
  std::vector<double> pl_sizes;
  std::vector<double> pl_rounds;
  for (const NodeId n : {36, 64, 100, 144, 196}) {
    Summary rounds;
    int diameter = 0;
    EdgeId m = 0;
    for (int trial = 0; trial < 3; ++trial) {
      Rng rng(1000 + n + trial);
      const Graph g = make_family("grid", n, rng);
      diameter = diameter_double_sweep(g);
      m = g.num_edges();
      ShermanOptions options;
      options.epsilon = 0.4;
      options.almost_route.epsilon = 0.4;
      options.num_trees = 6;
      const ShermanSolver solver(g, options, rng);
      const MaxFlowApproxResult flow = solver.max_flow(0, g.num_nodes() - 1);
      rounds.add(flow.rounds);
    }
    pl_sizes.push_back(static_cast<double>(n));
    pl_rounds.push_back(rounds.mean());
    print_row({fmt_int(n), fmt_int(diameter), fmt_int(m),
               fmt(rounds.mean(), 0),
               fmt(diameter + std::sqrt(static_cast<double>(n)), 1)});
  }
  const double pl_slope =
      std::log(pl_rounds.back() / pl_rounds.front()) /
      std::log(pl_sizes.back() / pl_sizes.front());

  std::printf("\nend-to-end log-log growth exponents:\n");
  std::printf("  push-relabel (bottleneck path): %.2f  (theory: ~2)\n",
              pr_slope);
  std::printf("  pipeline (grid):                %.2f  (theory: ~0.5-1 from "
              "D+sqrt(n); iteration count is n^o(1))\n",
              pl_slope);
  std::printf("\nexpected shape: the pipeline's exponent is well below "
              "push-relabel's; its absolute counts at laptop n are "
              "dominated by the n^o(1) polylog factors (see "
              "EXPERIMENTS.md for the crossover discussion).\n");
  return 0;
}
