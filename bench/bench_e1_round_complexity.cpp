// E1 (Theorem 1.1): round complexity of the full pipeline vs the
// distributed push-relabel strawman and the trivial O(m) collect-all
// baseline, as n grows.
//
// The paper's claim is asymptotic: (D + sqrt(n)) n^o(1) eps^-3 rounds
// against Omega(n^2) for push-relabel and O(m) for collecting the
// topology. At laptop scale the n^o(1) polylogs dominate the pipeline's
// absolute counts, so the honest presentation is the *growth rate*: the
// table reports seed-averaged rounds and the log-log slope across the
// whole size range. Push-relabel is measured on its classic bad case
// (a high-capacity path feeding a unit bottleneck: almost all injected
// excess must be drained back, forcing Theta(n^2) pulse work); the
// pipeline runs on the same instances.
//
// CongestSim v2 regenerated these curves at 10x the node counts the
// sequential simulator could reach: E1a now runs to n = 640 (was 64),
// dispatched through FlowEngine::submit(CongestQuery) like any other
// engine workload. E1c measures the simulator itself — the flat
// arena + worklist core vs the committed sequential reference at equal
// (bitwise) transcripts — and emits the gated rounds/sec record.
//
//   ./bench_e1_round_complexity [pushrel_max_n] [compare_n] [seed]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "congest/push_relabel_dist.h"
#include "congest/reference_network.h"
#include "engine/engine.h"
#include "graph/algorithms.h"
#include "maxflow/sherman.h"
#include "util/stats.h"

namespace {

using namespace dmf;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Path with generous capacities and a unit bottleneck at the sink side.
Graph bottleneck_path(NodeId n, Rng& rng) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    const bool last = (v + 2 == n);
    g.add_edge(v, v + 1,
               last ? 1.0 : static_cast<double>(rng.next_int(8, 12)));
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmf::bench;
  const NodeId pushrel_max_n = argc > 1 ? std::atoi(argv[1]) : 640;
  const NodeId compare_n = argc > 2 ? std::atoi(argv[2]) : 320;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100;

  JsonArtifact artifact("BENCH_e1.json");

  print_header("E1a",
               "push-relabel rounds on the bottleneck path "
               "(FlowEngine CongestQuery)");
  print_row({"n", "D", "m", "pushrel_mean", "pushrel/n^2", "sim_rounds/s"});
  std::vector<double> pr_sizes;
  std::vector<double> pr_rounds;
  for (const NodeId n : {80, 160, 320, 640}) {
    if (n > pushrel_max_n) break;
    const int trials = n >= 320 ? 2 : 3;
    Summary rounds;
    double sim_seconds = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(seed + static_cast<std::uint64_t>(n) +
              static_cast<std::uint64_t>(trial));
      Graph g = bottleneck_path(n, rng);
      // Round-complexity queries dispatch through the engine like any
      // other workload: the registry routes them to the simulator.
      EngineOptions options;
      options.threads = 1;
      options.sherman.num_trees = 4;
      options.seed = seed;
      FlowEngine engine(std::move(g), options);
      const auto start = Clock::now();
      const Result<CongestRunResult> result =
          engine.submit(CongestQuery{0, n - 1}).get();
      sim_seconds += seconds_since(start);
      if (!result.ok()) {
        std::fprintf(stderr, "E1a query failed: %s\n",
                     result.message.c_str());
        return 1;
      }
      rounds.add(static_cast<double>(result->stats.rounds));
    }
    pr_sizes.push_back(static_cast<double>(n));
    pr_rounds.push_back(rounds.mean());
    const double rounds_per_sec =
        rounds.mean() * trials / std::max(1e-9, sim_seconds);
    print_row({fmt_int(n), fmt_int(n - 1), fmt_int(n - 1),
               fmt(rounds.mean(), 0),
               fmt(rounds.mean() / (static_cast<double>(n) * n), 3),
               fmt(rounds_per_sec, 0)});
    artifact.add({{"scenario", "e1a_pushrel_n" + std::to_string(n)},
                  {"n", static_cast<long long>(n)},
                  {"rounds_mean", rounds.mean()},
                  {"rounds_per_n2",
                   rounds.mean() / (static_cast<double>(n) * n)},
                  {"sim_rounds_per_s", rounds_per_sec}});
  }
  if (pr_rounds.size() < 2) {
    std::fprintf(stderr,
                 "E1a needs at least two sizes (pushrel_max_n >= 160) for "
                 "a growth exponent\n");
    return 1;
  }
  const double pr_slope =
      std::log(pr_rounds.back() / pr_rounds.front()) /
      std::log(pr_sizes.back() / pr_sizes.front());

  // A note on dispersion (the former "e1b anomaly"): the route phase's
  // AlmostRoute gradient-iteration count is heavily conditioned on the
  // sampled hierarchy — across seeds at the SAME n it swings by up to
  // ~8x (e.g. 3.5k vs 18.9k iterations at n=64), while the hierarchy
  // BUILD rounds are smooth and monotone in n. The old seed-averaged
  // mean over 2-3 trials was therefore dominated by which seeds drew a
  // well- or ill-conditioned hierarchy, and came out wildly
  // non-monotone (15.3M -> 7.4M -> 90.3M -> 28.7M -> 100.9M). The
  // honest estimator is the MEDIAN over more seeds, with the spread
  // reported alongside and the build rounds (the smooth component)
  // broken out.
  print_header("E1b", "pipeline rounds vs n (grid family, seed-median)");
  print_row({"n", "D", "m(trivial)", "pipeline_med", "min..max",
             "build_mean", "D+sqrt(n)"});
  std::vector<double> pl_sizes;
  std::vector<double> pl_rounds;
  for (const NodeId n : {64, 144, 256, 400, 576}) {
    std::vector<double> rounds;
    Summary build_rounds;
    int diameter = 0;
    EdgeId m = 0;
    const int trials = n >= 400 ? 3 : 5;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(1000 + static_cast<std::uint64_t>(n) +
              static_cast<std::uint64_t>(trial));
      const Graph g = make_family("grid", n, rng);
      diameter = diameter_double_sweep(g);
      m = g.num_edges();
      ShermanOptions options;
      options.epsilon = 0.4;
      options.almost_route.epsilon = 0.4;
      options.num_trees = 6;
      const ShermanSolver solver(g, options, rng);
      const MaxFlowApproxResult flow = solver.max_flow(0, g.num_nodes() - 1);
      rounds.push_back(flow.rounds);
      build_rounds.add(solver.build_rounds());
    }
    const double rounds_median = median(rounds);
    const double rounds_min = *std::min_element(rounds.begin(), rounds.end());
    const double rounds_max = *std::max_element(rounds.begin(), rounds.end());
    pl_sizes.push_back(static_cast<double>(n));
    pl_rounds.push_back(rounds_median);
    print_row({fmt_int(n), fmt_int(diameter), fmt_int(m),
               fmt(rounds_median, 0),
               fmt(rounds_min / 1e6, 1) + ".." + fmt(rounds_max / 1e6, 1) +
                   "M",
               fmt(build_rounds.mean(), 0),
               fmt(diameter + std::sqrt(static_cast<double>(n)), 1)});
    artifact.add({{"scenario", "e1b_pipeline_n" + std::to_string(n)},
                  {"n", static_cast<long long>(n)},
                  {"diameter", static_cast<long long>(diameter)},
                  {"trials", trials},
                  {"pipeline_rounds_median", rounds_median},
                  {"pipeline_rounds_min", rounds_min},
                  {"pipeline_rounds_max", rounds_max},
                  {"build_rounds_mean", build_rounds.mean()},
                  {"d_plus_sqrt_n",
                   diameter + std::sqrt(static_cast<double>(n))}});
  }
  const double pl_slope =
      std::log(pl_rounds.back() / pl_rounds.front()) /
      std::log(pl_sizes.back() / pl_sizes.front());

  print_header("E1c",
               "simulator throughput: flat arenas + worklist vs the "
               "sequential reference (equal transcripts)");
  print_row({"n", "rounds", "flat_s", "ref_s", "flat_r/s", "ref_r/s",
             "speedup", "transcripts"});
  {
    Rng rng(seed + 7);
    const Graph g = bottleneck_path(compare_n, rng);
    const NodeId source = 0;
    const NodeId sink = compare_n - 1;
    const congest::RunOptions run_options =
        congest::push_relabel_run_options(compare_n,
                                          {0, /*threads=*/1});
    const auto make_programs = [&] {
      std::vector<congest::PushRelabelProgram> programs;
      programs.reserve(static_cast<std::size_t>(compare_n));
      for (NodeId v = 0; v < compare_n; ++v) {
        programs.emplace_back(
            congest::PushRelabelProgram::Config{source, sink});
      }
      return programs;
    };

    // Flat simulator (CongestSim v2), single thread for a like-for-like
    // architecture comparison. The flat core finishes a run in
    // milliseconds, so the gated timing spans kRepeats runs to stay
    // well above scheduler noise (every run is bitwise identical — the
    // loop double-checks).
    constexpr int kRepeats = 20;
    congest::Network flat(g);
    auto warm = make_programs();  // one warm-up run off the clock
    (void)flat.run(warm, run_options);
    auto flat_programs = make_programs();
    const auto flat_start = Clock::now();
    congest::RunStats flat_stats = flat.run(flat_programs, run_options);
    for (int repeat = 1; repeat < kRepeats; ++repeat) {
      flat_programs = make_programs();
      const congest::RunStats again = flat.run(flat_programs, run_options);
      if (again.transcript_hash != flat_stats.transcript_hash) {
        std::fprintf(stderr, "E1c: repeated flat runs diverged\n");
        return 1;
      }
    }
    const double flat_seconds =
        seconds_since(flat_start) / static_cast<double>(kRepeats);

    // Committed sequential reference (ragged inboxes, full scans).
    congest::ReferenceNetwork reference(g);
    auto ref_programs = make_programs();
    const auto ref_start = Clock::now();
    const congest::RunStats ref_stats =
        reference.run(ref_programs, run_options);
    const double ref_seconds = seconds_since(ref_start);

    const bool equal =
        flat_stats.transcript_hash == ref_stats.transcript_hash &&
        flat_stats.rounds == ref_stats.rounds &&
        flat_stats.messages == ref_stats.messages;
    if (!equal) {
      std::fprintf(stderr,
                   "E1c: simulator transcripts DIVERGED (flat %d rounds "
                   "%llx vs ref %d rounds %llx)\n",
                   flat_stats.rounds,
                   static_cast<unsigned long long>(
                       flat_stats.transcript_hash),
                   ref_stats.rounds,
                   static_cast<unsigned long long>(
                       ref_stats.transcript_hash));
      return 1;
    }
    const double flat_rps =
        static_cast<double>(flat_stats.rounds) / std::max(1e-9, flat_seconds);
    const double ref_rps =
        static_cast<double>(ref_stats.rounds) / std::max(1e-9, ref_seconds);
    const double speedup = flat_rps / std::max(1e-9, ref_rps);
    print_row({fmt_int(compare_n), fmt_int(flat_stats.rounds),
               fmt(flat_seconds, 3), fmt(ref_seconds, 3), fmt(flat_rps, 0),
               fmt(ref_rps, 0), fmt(speedup, 1), equal ? "EQUAL" : "DIFF"});
    // The gated record: simulator throughput in rounds/sec, compared by
    // scripts/check_bench_regression.py like the E13/E14 qps fields.
    artifact.add({{"scenario", "e1_sim_throughput"},
                  {"n", static_cast<long long>(compare_n)},
                  {"rounds", static_cast<long long>(flat_stats.rounds)},
                  {"throughput_qps", flat_rps},
                  {"reference_rounds_per_s", ref_rps},
                  {"speedup_vs_reference", speedup},
                  {"transcripts_equal", equal ? 1 : 0}});
  }

  std::printf("\nend-to-end log-log growth exponents:\n");
  std::printf("  push-relabel (bottleneck path): %.2f  (theory: ~2)\n",
              pr_slope);
  std::printf("  pipeline (grid):                %.2f  (theory: ~0.5-1 from "
              "D+sqrt(n); iteration count is n^o(1))\n",
              pl_slope);
  std::printf("\nexpected shape: the pipeline's exponent is well below "
              "push-relabel's; its absolute counts at laptop n are "
              "dominated by the n^o(1) polylog factors (see "
              "EXPERIMENTS.md for the crossover discussion).\n");
  artifact.add({{"scenario", "e1_slopes"},
                {"pushrel_loglog_slope", pr_slope},
                {"pipeline_loglog_slope", pl_slope}});
  artifact.write();
  return 0;
}
