// E17: cold start — reopen a persisted store vs rebuild from scratch.
//
// The out-of-core snapshot path's thesis: with --data-dir style
// persistence (PersistPolicy::kOnPublish), every published snapshot AND
// the hierarchy serving it land on disk as mmap arena files, so a
// process restart maps the saved tree arrays back in instead of
// resampling them — the first query after a crash costs a file open,
// not a hierarchy build. Two timed paths over the SAME final graph:
//
//   rebuild:   a fresh in-memory engine on a copy of the reopened
//              snapshot's graph — pays the full hierarchy construction
//              before it can serve. This is what every boot cost before
//              the arena files existed.
//   cold open: GraphStore::open(dir) + engine construction, serving
//              from the persisted hierarchy (hierarchy_cold_loads == 1,
//              zero rebuilds started).
//
// Both clocks stop at serving-ready (the constructor returning with a
// live hierarchy): a Sherman max-flow query costs the same on either
// side and at these sizes dwarfs the build itself, so timing
// ctor+query would measure the query, not the boot. The query still
// runs — untimed — on both engines and must match bitwise (the
// persisted hierarchy IS the built one, tree for tree).
//
// The setup phase applies a couple of capacity batches before the
// measurement so the reopened store walks a real manifest chain (COW
// arenas, not just v0). `speedup` = T_rebuild / T_cold is
// machine-class independent and is what the regression gate tracks.
//
// The cold open is repeated a few times and the median taken: T_cold is
// milliseconds, so a single sample is scheduler noise.
//
//   ./bench_e17_cold_start [n] [trees] [seed]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "graph/graph_store.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmf;
  const NodeId n = argc > 1 ? std::atoi(argv[1]) : 256;
  const int trees = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1337;
  constexpr int kColdRepeats = 5;

  bench::JsonArtifact artifact("BENCH_e17.json");
  Rng rng(seed);
  Graph g = bench::make_family("grid", n, rng);
  const auto nn = static_cast<NodeId>(g.num_nodes());
  const NodeId far_corner = nn - 1;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dmf_bench_e17." + std::to_string(static_cast<long long>(::getpid())));
  std::filesystem::remove_all(dir);

  EngineOptions options;
  options.threads = 4;
  options.sherman.num_trees = trees;
  options.seed = seed;
  // Route the grid through the Sherman path even at bench-smoke sizes;
  // an exact-baseline answer would make the cold open trivially fast
  // AND trivially meaningless (nothing persisted is exercised).
  options.exact_cutoff_nodes = 4;

  // --- setup (untimed): publish a store + hierarchy to disk. ---
  bench::print_header("E17", "cold open vs rebuild");
  {
    GraphStoreOptions gopts;
    gopts.data_dir = dir.string();
    gopts.persist = PersistPolicy::kOnPublish;
    auto store = std::make_shared<GraphStore>(std::move(g), gopts);
    FlowEngine engine(store, options);
    // Two capacity rounds: the reopened store replays a real manifest
    // chain and the persisted hierarchy is the post-repair one.
    for (int round = 0; round < 2; ++round) {
      MutationBatch batch;
      const Graph& cur = *engine.store()->snapshot().graph;
      for (int k = 0; k < 4; ++k) {
        const auto e = static_cast<EdgeId>(
            (round * 7 + k * 3) % static_cast<int>(cur.num_edges()));
        const double factor = k % 2 == 0 ? 1.25 : 0.8;
        batch.set_capacity(e, cur.capacity(e) * factor);
      }
      const GraphVersion v = engine.apply(batch).version;
      engine.wait_for_version(v);
    }
  }

  // --- rebuild baseline: fresh engine on the same graph, no disk. ---
  Graph final_graph = *GraphStore::open(dir.string())->snapshot().graph;
  double rebuild_seconds = 0.0;
  MaxFlowApproxResult want;
  {
    const auto start = Clock::now();
    FlowEngine fresh(final_graph, options);
    rebuild_seconds = seconds_since(start);  // serving-ready
    want = fresh.submit(MaxFlowQuery{0, far_corner}).get().value();
  }

  // --- cold open: map the persisted hierarchy, serve, no rebuild. ---
  std::vector<double> cold_samples;
  bool bitwise = true;
  std::int64_t cold_loads = 0;
  std::int64_t rebuilds_started = 0;
  for (int rep = 0; rep < kColdRepeats; ++rep) {
    const auto start = Clock::now();
    auto store = GraphStore::open(dir.string());
    FlowEngine cold(store, options);
    cold_samples.push_back(seconds_since(start));  // serving-ready
    if (rep == 0) {
      const MaxFlowApproxResult got =
          cold.submit(MaxFlowQuery{0, far_corner}).get().value();
      bitwise = got.value == want.value && got.flow == want.flow &&
                got.alpha == want.alpha;
    }
    const EngineStats stats = cold.stats();
    cold_loads = stats.hierarchy_cold_loads;
    rebuilds_started = stats.rebuild.started;
  }
  std::sort(cold_samples.begin(), cold_samples.end());
  const double cold_seconds = cold_samples[cold_samples.size() / 2];
  const double speedup = rebuild_seconds / cold_seconds;
  std::filesystem::remove_all(dir);

  bench::print_row({"nodes", "trees", "rebuild_s", "cold_s", "speedup",
                    "cold_loads", "bitwise"});
  bench::print_row({bench::fmt_int(nn), bench::fmt_int(trees),
                    bench::fmt(rebuild_seconds), bench::fmt(cold_seconds, 4),
                    bench::fmt(speedup, 1), bench::fmt_int(cold_loads),
                    bitwise ? "yes" : "NO"});
  artifact.add({{"scenario", "e17_cold_open"},
                {"n", static_cast<int>(nn)},
                {"trees", trees},
                {"rebuild_s", rebuild_seconds},
                {"cold_open_s", cold_seconds},
                {"speedup", speedup},
                {"value_ratio", 1.0}});
  artifact.write();

  if (!bitwise) {
    std::fprintf(stderr, "FAIL: cold answers diverge from rebuild\n");
    return 1;
  }
  if (cold_loads != 1 || rebuilds_started != 0) {
    std::fprintf(stderr,
                 "FAIL: cold open was not rebuild-free (cold_loads=%lld, "
                 "rebuilds_started=%lld)\n",
                 static_cast<long long>(cold_loads),
                 static_cast<long long>(rebuilds_started));
    return 1;
  }
  return 0;
}
