// dmf-serve: the network front door for the flow engine.
//
// Boots a FlowEngine on a synthetic graph (grid or G(n,p); a real
// deployment would load one), then serves it over HTTP/1.1 and the
// binary protocol until SIGTERM/SIGINT, at which point it drains
// gracefully: new work answers 503, in-flight queries finish and
// flush, final stats go to stderr, and the process exits 0.
//
// Usage:
//   dmf-serve [--port N] [--binary-port N] [--grid WxH | --gnp N P]
//             [--trees K] [--threads T] [--shards K] [--max-in-flight N]
//             [--tenant-qps R] [--deadline-ms D] [--seed S]
//             [--data-dir DIR]
//
// --shards K > 0 swaps the engine's single worker pool for K per-core
// run-to-completion pipelines (terminal-locality routed; see
// engine/shard_exec.h); /v1/stats then carries a per-shard breakdown.
//
// --data-dir DIR makes the store durable: every published snapshot (and
// the hierarchy serving it) is persisted as mmap arena files under DIR
// before the mutate returns. When DIR already holds a store, it is
// reopened instead of generating a graph — the synthetic-graph flags
// are ignored and the first query is served from the persisted
// hierarchy with zero rebuilds (even after a SIGKILL).
//
// With --port 0 the kernel picks a port; it is printed on stdout as
//   dmf-serve listening http=PORT binary=PORT
// so scripts (the CI smoke step) can scrape it.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "graph/generators.h"
#include "serve/serve_app.h"
#include "util/rng.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

double arg_number(int argc, char** argv, int* i, const char* flag) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "dmf-serve: %s needs a value\n", flag);
    std::exit(2);
  }
  return std::atof(argv[++*i]);
}

}  // namespace

int main(int argc, char** argv) {
  int http_port = 8080;
  int binary_port = -1;
  int grid_w = 24;
  int grid_h = 24;
  bool use_gnp = false;
  int gnp_n = 0;
  double gnp_p = 0.0;
  int trees = 6;
  int threads = 0;
  int shards = 0;
  int max_in_flight = 256;
  double tenant_qps = 0.0;
  double deadline_ms = 0.0;
  std::uint64_t seed = 1;
  std::string data_dir;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--port") == 0) {
      http_port = static_cast<int>(arg_number(argc, argv, &i, a));
    } else if (std::strcmp(a, "--binary-port") == 0) {
      binary_port = static_cast<int>(arg_number(argc, argv, &i, a));
    } else if (std::strcmp(a, "--grid") == 0) {
      if (i + 1 >= argc ||
          std::sscanf(argv[++i], "%dx%d", &grid_w, &grid_h) != 2) {
        std::fprintf(stderr, "dmf-serve: --grid needs WxH\n");
        return 2;
      }
    } else if (std::strcmp(a, "--gnp") == 0) {
      use_gnp = true;
      gnp_n = static_cast<int>(arg_number(argc, argv, &i, a));
      gnp_p = arg_number(argc, argv, &i, a);
    } else if (std::strcmp(a, "--trees") == 0) {
      trees = static_cast<int>(arg_number(argc, argv, &i, a));
    } else if (std::strcmp(a, "--threads") == 0) {
      threads = static_cast<int>(arg_number(argc, argv, &i, a));
    } else if (std::strcmp(a, "--shards") == 0) {
      shards = static_cast<int>(arg_number(argc, argv, &i, a));
    } else if (std::strcmp(a, "--max-in-flight") == 0) {
      max_in_flight = static_cast<int>(arg_number(argc, argv, &i, a));
    } else if (std::strcmp(a, "--tenant-qps") == 0) {
      tenant_qps = arg_number(argc, argv, &i, a);
    } else if (std::strcmp(a, "--deadline-ms") == 0) {
      deadline_ms = arg_number(argc, argv, &i, a);
    } else if (std::strcmp(a, "--seed") == 0) {
      seed = static_cast<std::uint64_t>(arg_number(argc, argv, &i, a));
    } else if (std::strcmp(a, "--data-dir") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dmf-serve: --data-dir needs a value\n");
        return 2;
      }
      data_dir = argv[++i];
    } else {
      std::fprintf(stderr, "dmf-serve: unknown flag %s\n", a);
      return 2;
    }
  }

  dmf::GraphStoreOptions gopts;
  gopts.data_dir = data_dir;
  if (!data_dir.empty()) gopts.persist = dmf::PersistPolicy::kOnPublish;

  std::shared_ptr<dmf::GraphStore> store;
  if (!data_dir.empty() && dmf::GraphStore::can_open(data_dir)) {
    store = dmf::GraphStore::open(data_dir, gopts);
    std::fprintf(stderr, "dmf-serve: reopened %s at version %llu\n",
                 data_dir.c_str(),
                 static_cast<unsigned long long>(store->latest_version()));
  } else {
    dmf::Rng rng(seed);
    dmf::Graph graph =
        use_gnp ? dmf::make_gnp_connected(gnp_n, gnp_p, {1, 64}, rng)
                : dmf::make_grid(grid_w, grid_h, {1, 64}, rng);
    store = std::make_shared<dmf::GraphStore>(std::move(graph), gopts);
  }

  dmf::EngineOptions eopts;
  eopts.sherman.num_trees = trees;
  eopts.threads = threads;
  eopts.shards = shards;
  eopts.seed = seed;
  dmf::FlowEngine engine(store, eopts);

  dmf::serve::ServeAppOptions sopts;
  sopts.http.http_port = http_port;
  sopts.http.binary_port = binary_port;
  sopts.max_in_flight = max_in_flight;
  sopts.default_quota.tokens_per_second = tenant_qps;
  sopts.default_deadline_seconds = deadline_ms / 1000.0;
  dmf::serve::ServeApp app(engine, sopts);

  std::string error;
  if (!app.start(&error)) {
    std::fprintf(stderr, "dmf-serve: start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("dmf-serve listening http=%d binary=%d\n", app.http_port(),
              app.binary_port());
  std::fflush(stdout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (g_shutdown == 0) {
    timespec ts{0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::fprintf(stderr, "dmf-serve: draining\n");
  app.drain();
  const dmf::serve::ServeCounters counters = app.counters();
  const dmf::EngineStats stats = engine.stats();
  std::fprintf(stderr,
               "dmf-serve: drained admitted=%lld shed=%lld cancelled=%lld "
               "queries_served=%lld\n",
               static_cast<long long>(counters.admitted),
               static_cast<long long>(counters.shed_in_flight +
                                      counters.shed_quota),
               static_cast<long long>(counters.deadline_cancelled),
               static_cast<long long>(stats.queries_served));
  return 0;
}
